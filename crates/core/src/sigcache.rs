//! Semantic-signature cache for expression matching (Definition 4.5).
//!
//! Expression matching `e1 ≃_{Γ,ℓ} e2` asks whether two expressions evaluate
//! to the same value on every memory occurring at location `ℓ` in the traces
//! `Γ`. The repair algorithm's ω-enumeration (Fig. 5) asks this question for
//! thousands of candidate pairs per location, and the *same* representative
//! expression appears on one side of almost all of them. A
//! [`SignatureCache`] evaluates each structurally distinct expression **once
//! per location** into a *value-vector signature* — the vector of its values
//! over the location's memories plus a hash of that vector — and answers
//! subsequent matching queries with a hash-map lookup and a hash comparison.
//!
//! Soundness: the hash is computed through `Value`'s `py_eq`-consistent
//! `Hash` impl, so dynamically equivalent value vectors always hash equally;
//! on hash equality the cached vectors are compared value by value, so a hash
//! collision can never produce a false match. The cache therefore agrees
//! exactly with the direct pairwise evaluation in
//! [`crate::matching::exprs_match`] (property-tested below).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use clara_lang::{eval_expr, Expr, Value};
use clara_model::{Loc, Memory, Trace};

/// The evaluation signature of one expression at one location: its values
/// over the memories occurring at the location, plus a hash of that vector.
#[derive(Debug, Clone)]
pub struct ValueSignature {
    hash: u64,
    values: Rc<[Value]>,
}

impl ValueSignature {
    /// `true` when the two signatures describe dynamically equivalent
    /// expressions: equal hashes (cheap negative filter) confirmed by the
    /// exact `py_eq` comparison of the value vectors (collision guard).
    pub fn matches(&self, other: &ValueSignature) -> bool {
        self.hash == other.hash && self.values[..] == other.values[..]
    }
}

struct LocSignatures<'t> {
    /// The memories occurring at the location, over all traces, in order.
    memories: Vec<&'t Memory>,
    /// Signature per structurally distinct expression.
    table: HashMap<Expr, ValueSignature>,
}

/// Memoized expression evaluation over the memories of a fixed trace set.
///
/// One cache is built per `repair_against_cluster` call (the traces are the
/// representative's); it is intentionally single-threaded — cluster-level
/// parallelism builds one cache per worker.
pub struct SignatureCache<'t> {
    traces: &'t [Trace],
    locs: HashMap<usize, LocSignatures<'t>>,
}

impl<'t> SignatureCache<'t> {
    /// Creates an empty cache over `traces`. Per-location memory lists are
    /// materialised lazily on first use.
    pub fn new(traces: &'t [Trace]) -> Self {
        SignatureCache { traces, locs: HashMap::new() }
    }

    /// The signature of `expr` at `loc`: evaluated on first request,
    /// memoized (keyed on the expression's structural hash) afterwards.
    /// Evaluation errors yield `⊥`, exactly as in direct matching.
    pub fn signature(&mut self, expr: &Expr, loc: Loc) -> ValueSignature {
        let traces = self.traces;
        let entry = self.locs.entry(loc.0).or_insert_with(|| LocSignatures {
            memories: traces.iter().flat_map(|t| t.memories_at(loc)).collect(),
            table: HashMap::new(),
        });
        if let Some(sig) = entry.table.get(expr) {
            return sig.clone();
        }
        // Only cache misses pay for evaluation; time them so the sigcache
        // stage histogram reflects real work, not memo lookups.
        let _timer = crate::timing::StageTimer::start(crate::timing::Stage::SigCache);
        let values: Vec<Value> =
            entry.memories.iter().map(|m| eval_expr(expr, *m).unwrap_or(Value::Undef)).collect();
        let mut hasher = DefaultHasher::new();
        values.len().hash(&mut hasher);
        for value in &values {
            value.hash(&mut hasher);
        }
        let sig = ValueSignature { hash: hasher.finish(), values: values.into() };
        entry.table.insert(expr.clone(), sig.clone());
        sig
    }

    /// Cached form of [`crate::matching::exprs_match`]: `true` iff the two
    /// expressions evaluate to the same value on every memory at `loc`.
    ///
    /// `e1` is signatured (and memoized) in full — in the repair loops it is
    /// the representative expression shared by thousands of queries. `e2` is
    /// first looked up in the memo table; on a miss it is evaluated
    /// *incrementally* against `e1`'s cached values with an early exit on the
    /// first mismatch (most candidates fail on the first memory, and a
    /// mismatching candidate is rarely queried twice, so memoizing it would
    /// cost more than it saves). Fully matching evaluations are memoized.
    pub fn exprs_match(&mut self, e1: &Expr, e2: &Expr, loc: Loc) -> bool {
        if e1 == e2 {
            // Structurally identical expressions are trivially equivalent.
            return true;
        }
        let s1 = self.signature(e1, loc);
        let entry = self.locs.get_mut(&loc.0).expect("loc entry created by signature()");
        if let Some(s2) = entry.table.get(e2) {
            return s1.matches(s2);
        }
        let mut values = Vec::with_capacity(entry.memories.len());
        for (i, memory) in entry.memories.iter().enumerate() {
            let value = eval_expr(e2, *memory).unwrap_or(Value::Undef);
            if !value.py_eq(&s1.values[i]) {
                return false;
            }
            values.push(value);
        }
        // Full match: the values are py_eq-equal to `s1`'s, so the
        // (py_eq-consistent) hash is necessarily equal too.
        entry.table.insert(e2.clone(), ValueSignature { hash: s1.hash, values: values.into() });
        true
    }

    /// Like [`SignatureCache::exprs_match`] for the pair `(e1, ω(e2))`, but
    /// without constructing the substituted expression: `ω(e2)` evaluated on
    /// a memory `σ` equals `e2` evaluated on `σ ∘ ω`, so `e2` is evaluated
    /// under a renaming view of each memory. This is the `(ω, •)` fast path
    /// of the repair enumeration, where each `(e2, ω)` pair is queried
    /// exactly once and building `ω(e2)` would only serve the comparison.
    pub fn matches_under_renaming(
        &mut self,
        e1: &Expr,
        e2: &Expr,
        omega: &HashMap<String, String>,
        loc: Loc,
    ) -> bool {
        if eq_under_renaming(e1, e2, omega) {
            // ω(e2) is structurally identical to e1 (the common case for
            // identity updates and for the representative's own expression):
            // trivially equivalent, no evaluation needed.
            return true;
        }
        let s1 = self.signature(e1, loc);
        let entry = self.locs.get_mut(&loc.0).expect("loc entry created by signature()");
        for (i, memory) in entry.memories.iter().enumerate() {
            let env = RenamedEnv { omega, memory };
            let value = eval_expr(e2, &env).unwrap_or(Value::Undef);
            if !value.py_eq(&s1.values[i]) {
                return false;
            }
        }
        true
    }

    /// Number of distinct (expression, location) signatures currently
    /// memoized (observability hook for benchmarks and tests).
    pub fn cached_signatures(&self) -> usize {
        self.locs.values().map(|l| l.table.len()).sum()
    }
}

/// Structural equality of `e1` and `ω(e2)` without materialising `ω(e2)`.
fn eq_under_renaming(e1: &Expr, e2: &Expr, omega: &HashMap<String, String>) -> bool {
    match (e1, e2) {
        (Expr::Var(a), Expr::Var(b)) => {
            let renamed = omega.get(b).map(String::as_str).unwrap_or(b);
            a == renamed
        }
        (Expr::Lit(a), Expr::Lit(b)) => a == b,
        (Expr::List(a), Expr::List(b)) | (Expr::Tuple(a), Expr::Tuple(b)) => {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| eq_under_renaming(x, y, omega))
        }
        (Expr::Unary(op1, a), Expr::Unary(op2, b)) => op1 == op2 && eq_under_renaming(a, b, omega),
        (Expr::Binary(op1, l1, r1), Expr::Binary(op2, l2, r2)) => {
            op1 == op2 && eq_under_renaming(l1, l2, omega) && eq_under_renaming(r1, r2, omega)
        }
        (Expr::Index(b1, i1), Expr::Index(b2, i2)) => {
            eq_under_renaming(b1, b2, omega) && eq_under_renaming(i1, i2, omega)
        }
        (Expr::Slice(b1, l1, h1), Expr::Slice(b2, l2, h2)) => {
            let opt_eq = |x: &Option<Box<Expr>>, y: &Option<Box<Expr>>| match (x, y) {
                (Some(x), Some(y)) => eq_under_renaming(x, y, omega),
                (None, None) => true,
                _ => false,
            };
            eq_under_renaming(b1, b2, omega) && opt_eq(l1, l2) && opt_eq(h1, h2)
        }
        (Expr::Call(n1, a1), Expr::Call(n2, a2)) => {
            n1 == n2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| eq_under_renaming(x, y, omega))
        }
        (Expr::Method(r1, n1, a1), Expr::Method(r2, n2, a2)) => {
            n1 == n2
                && eq_under_renaming(r1, r2, omega)
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| eq_under_renaming(x, y, omega))
        }
        _ => false,
    }
}

/// A memory viewed through a variable renaming ω: looking up `name` reads
/// `ω(name)` (or `name` itself when unmapped) from the underlying memory.
struct RenamedEnv<'a> {
    omega: &'a HashMap<String, String>,
    memory: &'a Memory,
}

impl clara_lang::Env for RenamedEnv<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        let target = self.omega.get(name).map(String::as_str).unwrap_or(name);
        self.memory.get(target).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::exprs_match;
    use clara_lang::parse_expression;
    use clara_model::{Step, TraceStatus};
    use proptest::prelude::*;

    fn memory(pairs: &[(&str, Value)]) -> Memory {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect()
    }

    /// Builds one trace whose steps place each memory at the location cycle
    /// ℓ0, ℓ1, ℓ0, ℓ1, ... so both locations see a disjoint memory subset.
    fn trace_over(memories: Vec<Memory>) -> Trace {
        let steps = memories
            .into_iter()
            .enumerate()
            .map(|(i, pre)| Step { loc: Loc(i % 2), post: pre.clone(), pre })
            .collect();
        Trace::new(steps, TraceStatus::Completed)
    }

    #[test]
    fn cache_agrees_on_the_papers_examples() {
        let mems = vec![
            memory(&[
                ("result", Value::list(vec![])),
                ("poly", Value::list(vec![Value::Float(6.3), Value::Float(7.6)])),
                ("e", Value::Int(1)),
            ]),
            memory(&[
                ("result", Value::list(vec![Value::Float(7.6)])),
                ("poly", Value::list(vec![Value::Float(6.3), Value::Float(7.6)])),
                ("e", Value::Int(1)),
            ]),
        ];
        let traces = vec![trace_over(mems)];
        let a = parse_expression("result + [float(poly[e]*e)]").unwrap();
        let b = parse_expression("result + [float(e)*poly[e]]").unwrap();
        let c = parse_expression("result + [poly[e]]").unwrap();
        let mut cache = SignatureCache::new(&traces);
        for loc in [Loc(0), Loc(1)] {
            for (x, y) in [(&a, &b), (&a, &c), (&b, &c)] {
                assert_eq!(cache.exprs_match(x, y, loc), exprs_match(x, y, &traces, loc));
            }
        }
        assert!(cache.cached_signatures() > 0);
    }

    #[test]
    fn numeric_type_mixes_match_like_py_eq() {
        // 1 and 1.0 are py_eq-equal: the signature hash must agree.
        let mems = vec![memory(&[("x", Value::Int(2))])];
        let traces = vec![trace_over(mems)];
        let int_expr = parse_expression("x * 1").unwrap();
        let float_expr = parse_expression("x * 1.0").unwrap();
        let mut cache = SignatureCache::new(&traces);
        assert!(exprs_match(&int_expr, &float_expr, &traces, Loc(0)));
        assert!(cache.exprs_match(&int_expr, &float_expr, Loc(0)));
    }

    #[test]
    fn repeated_queries_hit_the_memo_table() {
        let mems = vec![memory(&[("x", Value::Int(3))])];
        let traces = vec![trace_over(mems)];
        let a = parse_expression("x + 1").unwrap();
        let b = parse_expression("1 + x").unwrap();
        let mut cache = SignatureCache::new(&traces);
        assert!(cache.exprs_match(&a, &b, Loc(0)));
        let memoized = cache.cached_signatures();
        for _ in 0..10 {
            assert!(cache.exprs_match(&a, &b, Loc(0)));
        }
        assert_eq!(cache.cached_signatures(), memoized, "no re-evaluation on repeat queries");
    }

    // ------------------------------------------------------------------
    // Property: the cached matcher agrees with direct pairwise evaluation
    // on random expressions and random memories.
    // ------------------------------------------------------------------

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            (-5i64..6).prop_map(Value::Int),
            (-6i64..7).prop_map(|i| Value::Float(i as f64 * 0.5)),
            Just(Value::Bool(true)),
            Just(Value::Bool(false)),
            Just(Value::None),
            Just(Value::Undef),
            Just(Value::str("ab")),
            proptest::collection::vec((-3i64..4).prop_map(Value::Int), 0..4).prop_map(Value::list),
        ]
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-4i64..5).prop_map(Expr::int),
            (-4i64..5).prop_map(|i| Expr::float(i as f64 * 0.5)),
            proptest::sample::select(vec!["a", "b", "xs"]).prop_map(Expr::var),
        ];
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                (
                    inner.clone(),
                    inner.clone(),
                    proptest::sample::select(vec![
                        clara_lang::BinOp::Add,
                        clara_lang::BinOp::Sub,
                        clara_lang::BinOp::Mul,
                        clara_lang::BinOp::Eq,
                        clara_lang::BinOp::Lt,
                    ])
                )
                    .prop_map(|(l, r, op)| Expr::bin(op, l, r)),
                (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
                inner.clone().prop_map(|e| Expr::call("len", vec![e])),
                proptest::collection::vec(inner, 0..3).prop_map(Expr::List),
            ]
        })
    }

    fn arb_memory() -> impl Strategy<Value = Memory> {
        (arb_value(), arb_value(), arb_value())
            .prop_map(|(a, b, xs)| memory(&[("a", a), ("b", b), ("xs", xs)]))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn cached_matching_agrees_with_direct_evaluation(
            e1 in arb_expr(),
            e2 in arb_expr(),
            mems in proptest::collection::vec(arb_memory(), 1..5),
        ) {
            let traces = vec![trace_over(mems)];
            let mut cache = SignatureCache::new(&traces);
            for loc in [Loc(0), Loc(1), Loc(7)] {
                let direct = exprs_match(&e1, &e2, &traces, loc);
                prop_assert_eq!(cache.exprs_match(&e1, &e2, loc), direct);
                // And again, now that both signatures are memoized.
                prop_assert_eq!(cache.exprs_match(&e1, &e2, loc), direct);
            }
        }

        #[test]
        fn renamed_matching_agrees_with_substitution(
            e1 in arb_expr(),
            e2 in arb_expr(),
            mems in proptest::collection::vec(arb_memory(), 1..5),
            targets in proptest::collection::vec(
                proptest::sample::select(vec!["a", "b", "xs"]), 3),
        ) {
            // An arbitrary (not necessarily injective) renaming over the
            // variables of the test universe.
            let omega: HashMap<String, String> = ["a", "b", "xs"]
                .iter()
                .zip(&targets)
                .map(|(from, to)| ((*from).to_owned(), (*to).to_owned()))
                .collect();
            let substituted =
                e2.substitute(&|name| omega.get(name).map(|t| Expr::Var(t.clone())));
            let traces = vec![trace_over(mems)];
            let mut cache = SignatureCache::new(&traces);
            for loc in [Loc(0), Loc(1)] {
                let direct = exprs_match(&e1, &substituted, &traces, loc);
                prop_assert_eq!(cache.matches_under_renaming(&e1, &e2, &omega, loc), direct);
            }
        }
    }
}
