//! The `Lang → Frontend` registry.
//!
//! `clara-core` is the lowest layer that can see every frontend crate
//! (`clara-model` hosts the MiniPy frontend and the trait, `clara-c` hosts
//! MiniC), so the dispatch lives here. Everything above — the engine, the
//! feedback renderer, the server, the CLI — asks for a frontend by
//! [`Lang`] and never names a concrete language again.
//!
//! Adding frontend N+1 is a one-crate job: implement
//! `clara_model::frontend::{Frontend, ParsedSubmission}` in the new crate,
//! add a [`Lang`] variant, and add one arm below.

use clara_model::frontend::{Frontend, Lang};

/// The frontend serving `lang`.
pub fn frontend(lang: Lang) -> &'static dyn Frontend {
    match lang {
        Lang::MiniPy => &clara_model::frontend::MINIPY,
        Lang::MiniC => &clara_c::MINIC,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lang_has_a_frontend_answering_for_it() {
        for lang in Lang::all() {
            assert_eq!(frontend(lang).lang(), lang);
        }
    }

    #[test]
    fn frontends_render_their_own_syntax() {
        let expr = clara_lang::parse_expression("not a and b").unwrap();
        assert_eq!(frontend(Lang::MiniPy).render_expr(&expr), "not a and b");
        assert_eq!(frontend(Lang::MiniC).render_expr(&expr), "!a && b");
    }
}
