//! Clustering of correct student solutions (§4, Definition 4.7).
//!
//! Clusters are the equivalence classes of the matching relation `∼_I`. Each
//! cluster keeps an arbitrary representative and the set of *cluster
//! expressions* `E_C(ℓ, v)`: all dynamically equivalent (but possibly
//! syntactically different) expressions contributed by its members,
//! translated to range over the representative's variables. The repair
//! algorithm later mines these expressions to build candidate local repairs.

use std::collections::{HashMap, HashSet};

use clara_lang::Expr;
use clara_model::Loc;

use crate::analysis::AnalyzedProgram;
use crate::matching::{apply_var_map, find_matching, VarMap};

/// A cluster of dynamically equivalent correct solutions.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The cluster representative `P_C`.
    pub representative: AnalyzedProgram,
    /// Indices (into the input list of [`cluster_programs`]) of the members.
    pub member_ids: Vec<usize>,
    /// The cluster expressions `E_C(ℓ, v)`, over the representative's
    /// variables, de-duplicated structurally.
    expressions: HashMap<(usize, String), Vec<Expr>>,
    /// Set view of `expressions` for O(1) structural dedup (Expr is
    /// `Eq + Hash`).
    expression_set: HashSet<(usize, String, Expr)>,
}

impl Cluster {
    fn new(representative: AnalyzedProgram, id: usize) -> Self {
        let mut cluster = Cluster {
            representative,
            member_ids: vec![id],
            expressions: HashMap::new(),
            expression_set: HashSet::new(),
        };
        let identity: VarMap =
            cluster.representative.program.vars.iter().map(|v| (v.clone(), v.clone())).collect();
        cluster.absorb_expressions_with(&identity, &cluster.representative.program.clone());
        cluster
    }

    /// Number of member programs.
    pub fn size(&self) -> usize {
        self.member_ids.len()
    }

    /// The cluster expressions for `(loc, var)`, where `var` is a variable of
    /// the representative.
    pub fn expressions(&self, loc: Loc, var: &str) -> &[Expr] {
        self.expressions.get(&(loc.0, var.to_owned())).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All `(loc, var)` pairs that have at least one cluster expression.
    pub fn expression_keys(&self) -> impl Iterator<Item = (Loc, &str)> {
        self.expressions.keys().map(|(loc, var)| (Loc(*loc), var.as_str()))
    }

    /// Total number of stored cluster expressions (after de-duplication).
    pub fn expression_count(&self) -> usize {
        self.expressions.values().map(Vec::len).sum()
    }

    /// Exports the mined cluster expressions in a deterministic order
    /// (sorted by location, then variable), preserving the per-slot mining
    /// order that repair candidate enumeration sees. This is the
    /// serialization contract of the persistent cluster index: feeding the
    /// result to [`Cluster::from_parts`] reconstructs an equivalent cluster.
    pub fn export_expressions(&self) -> Vec<(usize, String, Vec<Expr>)> {
        let mut out: Vec<(usize, String, Vec<Expr>)> =
            self.expressions.iter().map(|((loc, var), exprs)| (*loc, var.clone(), exprs.clone())).collect();
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }

    /// Rebuilds a cluster from a previously exported state: the re-analysed
    /// representative, the stored member ids and the expression slots from
    /// [`Cluster::export_expressions`]. Expressions are taken as-is — the
    /// representative's own contributions must already be included (they
    /// always are in an exported cluster).
    pub fn from_parts(
        representative: AnalyzedProgram,
        member_ids: Vec<usize>,
        expression_slots: Vec<(usize, String, Vec<Expr>)>,
    ) -> Self {
        let mut expressions: HashMap<(usize, String), Vec<Expr>> = HashMap::new();
        let mut expression_set = HashSet::new();
        for (loc, var, exprs) in expression_slots {
            for expr in &exprs {
                expression_set.insert((loc, var.clone(), expr.clone()));
            }
            expressions.insert((loc, var), exprs);
        }
        Cluster { representative, member_ids, expressions, expression_set }
    }

    /// Caps every expression slot at `max_exprs` variants, keeping the
    /// mining order's prefix (earliest contributions — always including the
    /// representative's own expression, mined first). Returns whether
    /// anything was dropped. Idempotent: capping an already-capped cluster
    /// is a no-op.
    pub fn cap_expression_slots(&mut self, max_exprs: usize) -> bool {
        let max_exprs = max_exprs.max(1);
        let mut changed = false;
        for ((loc, var), exprs) in self.expressions.iter_mut() {
            if exprs.len() > max_exprs {
                for dropped in exprs.drain(max_exprs..) {
                    self.expression_set.remove(&(*loc, var.clone(), dropped));
                }
                changed = true;
            }
        }
        changed
    }

    pub(crate) fn absorb_member(&mut self, member: &AnalyzedProgram, witness: &VarMap, id: usize) {
        self.member_ids.push(id);
        let program = member.program.clone();
        self.absorb_expressions_with(witness, &program);
    }

    fn absorb_expressions_with(&mut self, witness: &VarMap, program: &clara_model::Program) {
        for loc in program.locs() {
            for (var, expr) in program.updates_at(loc) {
                let rep_var = witness.get(var).cloned().unwrap_or_else(|| var.clone());
                let translated = apply_var_map(expr, witness);
                if self.expression_set.insert((loc.0, rep_var.clone(), translated.clone())) {
                    self.expressions.entry((loc.0, rep_var)).or_default().push(translated);
                }
            }
        }
    }
}

/// Bounds on stored cluster state, applied after every insertion so
/// warm-start memory stays bounded as the correct pool grows without limit.
///
/// Compaction is lossy only for mined repair-expression *variants* — the
/// clusters themselves (the `∼_I` equivalence classes), their
/// representatives and member counts are never merged or dropped, because
/// matching is transitive: two clusters that could be merged would never
/// have formed separately. Defaults are generous enough that classroom-size
/// pools are unaffected.
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// Per-`(loc, var)` cap on mined expression variants in a full cluster.
    pub max_exprs_per_slot: usize,
    /// Cluster-count budget: when the pool holds more clusters than this,
    /// clusters outside the largest-`max_full_clusters` (by member count,
    /// earliest index winning ties) are demoted to representative-only
    /// expression skeletons (one expression per slot).
    pub max_full_clusters: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig { max_exprs_per_slot: 64, max_full_clusters: 256 }
    }
}

/// Applies `config` to every cluster: caps each slot, then demotes clusters
/// beyond the count budget to skeletons. Returns the number of clusters
/// that lost expressions. Idempotent for a fixed cluster population.
pub fn compact_clusters(clusters: &mut [Cluster], config: &CompactionConfig) -> usize {
    let mut touched = 0;
    for cluster in clusters.iter_mut() {
        if cluster.cap_expression_slots(config.max_exprs_per_slot) {
            touched += 1;
        }
    }
    if clusters.len() > config.max_full_clusters {
        // Rank by member count (descending; ties keep the earlier cluster)
        // and demote everything past the budget.
        let mut order: Vec<usize> = (0..clusters.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(clusters[i].size()), i));
        for &i in &order[config.max_full_clusters..] {
            if clusters[i].cap_expression_slots(1) {
                touched += 1;
            }
        }
    }
    touched
}

/// Summary statistics of a clustering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteringStats {
    /// Number of programs that were clustered.
    pub program_count: usize,
    /// Number of clusters produced.
    pub cluster_count: usize,
    /// Size of the largest cluster.
    pub largest_cluster: usize,
    /// Total number of mined cluster expressions.
    pub expression_count: usize,
}

/// Groups correct solutions into clusters (equivalence classes of `∼_I`).
///
/// Programs are matched against existing cluster representatives; the
/// behaviour fingerprint and structural signature serve as cheap pre-filters
/// before the full matching algorithm of Fig. 4 runs.
pub fn cluster_programs(programs: Vec<AnalyzedProgram>) -> Vec<Cluster> {
    let mut clusters: Vec<Cluster> = Vec::new();
    // Index clusters by fingerprint for a fast pre-filter.
    let mut by_fingerprint: HashMap<u64, Vec<usize>> = HashMap::new();

    for (id, program) in programs.into_iter().enumerate() {
        let mut placed = false;
        if let Some(candidates) = by_fingerprint.get(&program.fingerprint) {
            for &cluster_index in candidates {
                let witness = find_matching(&clusters[cluster_index].representative, &program);
                if let Some(witness) = witness {
                    clusters[cluster_index].absorb_member(&program, &witness, id);
                    placed = true;
                    break;
                }
            }
        }
        if !placed {
            let fingerprint = program.fingerprint;
            clusters.push(Cluster::new(program, id));
            by_fingerprint.entry(fingerprint).or_default().push(clusters.len() - 1);
        }
    }
    clusters
}

/// Computes summary statistics for a set of clusters.
pub fn clustering_stats(clusters: &[Cluster]) -> ClusteringStats {
    ClusteringStats {
        program_count: clusters.iter().map(Cluster::size).sum(),
        cluster_count: clusters.len(),
        largest_cluster: clusters.iter().map(Cluster::size).max().unwrap_or(0),
        expression_count: clusters.iter().map(Cluster::expression_count).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::{expr_to_string, Value};
    use clara_model::Fuel;

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    fn inputs() -> Vec<Vec<Value>> {
        vec![
            vec![poly(&[6.3, 7.6, 12.14])],
            vec![poly(&[3.0])],
            vec![poly(&[1.0, 2.0, 3.0, 4.0])],
            vec![poly(&[])],
        ]
    }

    fn analyze(src: &str) -> AnalyzedProgram {
        AnalyzedProgram::from_text(src, "computeDeriv", &inputs(), Fuel::default()).unwrap()
    }

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

    const C3: &str = "\
def computeDeriv(poly):
    out = []
    for k in range(1, len(poly)):
        out = out + [1.0 * poly[k] * k]
    if len(out) > 0:
        return out
    else:
        return [0.0]
";

    const WHILE_VERSION: &str = "\
def computeDeriv(poly):
    result = []
    i = 1
    while i < len(poly):
        result.append(float(poly[i]*i))
        i = i + 1
    if result == []:
        return [0.0]
    return result
";

    #[test]
    fn equivalent_solutions_form_one_cluster() {
        let clusters = cluster_programs(vec![analyze(C1), analyze(C2), analyze(C3)]);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].size(), 3);
    }

    #[test]
    fn structurally_different_solutions_form_separate_clusters() {
        let clusters = cluster_programs(vec![analyze(C1), analyze(WHILE_VERSION), analyze(C2)]);
        assert_eq!(clusters.len(), 2);
        let stats = clustering_stats(&clusters);
        assert_eq!(stats.program_count, 3);
        assert_eq!(stats.largest_cluster, 2);
    }

    #[test]
    fn cluster_expressions_are_mined_from_all_members() {
        let clusters = cluster_programs(vec![analyze(C1), analyze(C2), analyze(C3)]);
        let cluster = &clusters[0];
        // The loop-body assignment to `result` (location 2) has one expression
        // per syntactically distinct member contribution (Fig. 2(c)).
        let loop_exprs = cluster.expressions(Loc(2), "result");
        assert!(loop_exprs.len() >= 3, "expected ≥3 mined expressions, got {}", loop_exprs.len());
        let rendered: Vec<String> = loop_exprs.iter().map(expr_to_string).collect();
        assert!(rendered.iter().any(|s| s.contains("append")), "{rendered:?}");
        assert!(rendered.iter().any(|s| s.contains("+ [")), "{rendered:?}");
        // The return expression variants of Fig. 2(d).
        let return_exprs = cluster.expressions(Loc(3), "return");
        assert!(return_exprs.len() >= 2);
    }

    #[test]
    fn expressions_are_translated_to_representative_variables() {
        let clusters = cluster_programs(vec![analyze(C1), analyze(C2)]);
        let cluster = &clusters[0];
        for (_, exprs) in cluster.expressions.iter() {
            for expr in exprs {
                for var in expr.variables() {
                    assert!(
                        cluster.representative.program.vars.contains(&var),
                        "expression {} refers to non-representative variable {var}",
                        expr_to_string(expr)
                    );
                }
            }
        }
    }

    #[test]
    fn export_and_from_parts_reconstruct_the_cluster() {
        let clusters = cluster_programs(vec![analyze(C1), analyze(C2), analyze(C3)]);
        let original = &clusters[0];
        let rebuilt = Cluster::from_parts(
            original.representative.clone(),
            original.member_ids.clone(),
            original.export_expressions(),
        );
        assert_eq!(rebuilt.size(), original.size());
        assert_eq!(rebuilt.expression_count(), original.expression_count());
        for (loc, var) in original.expression_keys() {
            assert_eq!(rebuilt.expressions(loc, var), original.expressions(loc, var), "({loc:?}, {var})");
        }
        // Export order is deterministic (sorted), so exporting the rebuilt
        // cluster reproduces the exact same listing.
        assert_eq!(rebuilt.export_expressions(), original.export_expressions());
    }

    #[test]
    fn slot_capping_keeps_the_mining_prefix_and_is_idempotent() {
        let clusters = cluster_programs(vec![analyze(C1), analyze(C2), analyze(C3)]);
        let mut cluster = clusters[0].clone();
        let full = cluster.expressions(Loc(2), "result").to_vec();
        assert!(full.len() >= 3);

        assert!(cluster.cap_expression_slots(2), "capping below slot size drops variants");
        assert_eq!(cluster.expressions(Loc(2), "result"), &full[..2], "prefix survives");
        // Idempotence: re-capping at the same bound changes nothing.
        let exported = cluster.export_expressions();
        assert!(!cluster.cap_expression_slots(2));
        assert_eq!(cluster.export_expressions(), exported);
        // The set view stays consistent: a dropped expression can be mined
        // again by a later member without being treated as a duplicate.
        let dropped = full[2].clone();
        assert!(!cluster.export_expressions().iter().any(|(_, _, exprs)| exprs.contains(&dropped)));
    }

    #[test]
    fn compaction_demotes_only_clusters_beyond_the_budget() {
        let mut clusters =
            cluster_programs(vec![analyze(C1), analyze(C2), analyze(C3), analyze(WHILE_VERSION)]);
        assert_eq!(clusters.len(), 2);
        let big_before = clusters[0].expression_count();
        let config = CompactionConfig { max_exprs_per_slot: 64, max_full_clusters: 1 };
        compact_clusters(&mut clusters, &config);
        // The larger cluster (3 members) keeps its mined variants; the
        // singleton beyond the budget shrinks to one expression per slot.
        assert_eq!(clusters[0].expression_count(), big_before);
        assert!(clusters[1].expression_keys().all(|(loc, var)| clusters[1].expressions(loc, var).len() == 1));
        // Cluster identity (count, membership, order) is untouched.
        assert_eq!(clusters[0].size(), 3);
        assert_eq!(clusters[1].size(), 1);
        // Idempotent on a fixed population.
        let snapshot: Vec<_> = clusters.iter().map(Cluster::export_expressions).collect();
        compact_clusters(&mut clusters, &config);
        let again: Vec<_> = clusters.iter().map(Cluster::export_expressions).collect();
        assert_eq!(snapshot, again);
    }

    #[test]
    fn duplicate_programs_do_not_duplicate_expressions() {
        let clusters_once = cluster_programs(vec![analyze(C1), analyze(C2)]);
        let clusters_twice = cluster_programs(vec![analyze(C1), analyze(C2), analyze(C2), analyze(C1)]);
        assert_eq!(clusters_once.len(), 1);
        assert_eq!(clusters_twice.len(), 1);
        assert_eq!(clusters_once[0].expression_count(), clusters_twice[0].expression_count());
        assert_eq!(clusters_twice[0].size(), 4);
    }
}
