//! Lock-free snapshot publication: an atomic-pointer-swap cell in the
//! arc-swap / RCU style, hand-rolled over `std::sync::atomic` (the build
//! environment vendors its dependencies, so there is no `arc-swap` crate).
//!
//! The serving hot path must never take a lock: a reader calls
//! [`SnapshotCell::load`] and gets an [`Arc`] to an immutable snapshot in a
//! handful of atomic operations — no mutex, no rwlock, wait-free. Writers
//! build the *next* snapshot off-path (clone, mutate, publish) and swap it
//! in with a single atomic pointer exchange; concurrent readers keep using
//! whichever snapshot they already loaded.
//!
//! Every published snapshot carries a monotonically increasing
//! **generation** number. Consumers key derived state (e.g. the result
//! cache) on the generation, so publishing a new snapshot implicitly
//! invalidates everything computed against the old one.
//!
//! # Reclamation
//!
//! The classic hazard of a hand-rolled arc-swap is the window between a
//! reader loading the raw pointer and incrementing the strong count: a
//! writer that swaps and immediately drops the old `Arc` in that window
//! frees memory the reader is about to touch. The cell closes the window
//! with *striped reader counters* (a minimal quiescent-state scheme):
//!
//! * a reader increments one of [`STRIPES`] counters, loads the pointer,
//!   clones the `Arc`, and decrements the counter;
//! * a writer never frees a replaced snapshot directly — it *retires* the
//!   pointer, and frees the retired list only at a moment when every reader
//!   counter is observed at zero (all `SeqCst`, so a reader that starts
//!   after that observation is guaranteed to load the *new* pointer).
//!
//! Readers therefore pay two uncontended atomic increments per load
//! (striped to keep them uncontended); writers pay the deep-copy and a
//! short retired-list lock, which is fine because publications are rare
//! (online learning) while loads are the per-request hot path.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Number of reader-counter stripes; a small power of two keeps the array
/// compact while spreading unrelated threads across cache lines.
pub const STRIPES: usize = 8;

/// An immutable published snapshot: the payload plus the generation under
/// which it was published.
#[derive(Debug)]
pub struct Snapshot<T> {
    generation: u64,
    data: T,
}

impl<T> Snapshot<T> {
    /// The generation this snapshot was published at (the initial snapshot
    /// is generation 0).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The snapshot payload.
    pub fn data(&self) -> &T {
        &self.data
    }
}

impl<T> std::ops::Deref for Snapshot<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.data
    }
}

/// Pad each stripe to its own cache line so reader increments on different
/// stripes never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicUsize);

/// A cell holding the current [`Snapshot`], swappable atomically.
pub struct SnapshotCell<T> {
    /// `Arc::into_raw` of the current snapshot.
    current: AtomicPtr<Snapshot<T>>,
    /// Mirror of the current generation for cheap stats reads (the
    /// authoritative value lives inside the snapshot itself, so a loaded
    /// snapshot and its generation are always coherent).
    generation: AtomicU64,
    /// Striped active-reader counters (see module docs).
    readers: [PaddedCounter; STRIPES],
    /// Retired (replaced but not yet freed) snapshots. The lock also
    /// serializes writers; readers never touch it.
    retired: Mutex<Vec<*mut Snapshot<T>>>,
}

// Raw pointers poison auto-traits; the cell is exactly as thread-safe as an
// `Arc<Snapshot<T>>` handed across threads, hence the `Send + Sync` bounds.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

/// Each thread gets a sticky stripe assignment round-robin; a thread always
/// increments the same counter, so the per-load cost is an uncontended RMW.
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, SeqCst) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

impl<T> SnapshotCell<T> {
    /// Creates a cell whose initial snapshot (generation 0) holds `data`.
    pub fn new(data: T) -> Self {
        let first = Arc::into_raw(Arc::new(Snapshot { generation: 0, data })) as *mut Snapshot<T>;
        SnapshotCell {
            current: AtomicPtr::new(first),
            generation: AtomicU64::new(0),
            readers: Default::default(),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Loads the current snapshot. Wait-free: two striped atomic increments
    /// and one pointer load; never blocks on writers.
    pub fn load(&self) -> Arc<Snapshot<T>> {
        let slot = &self.readers[stripe()].0;
        slot.fetch_add(1, SeqCst);
        let ptr = self.current.load(SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and cannot have been freed:
        // writers only free retired pointers after observing every reader
        // counter at zero, and our counter is non-zero for the whole window
        // between the load above and the strong-count increment here (the
        // SeqCst total order makes the two observations mutually exclusive).
        let arc = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        slot.fetch_sub(1, SeqCst);
        arc
    }

    /// The current generation (0 until the first [`SnapshotCell::publish`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(SeqCst)
    }

    /// Publishes `data` as the next snapshot and returns its generation.
    /// Readers switch over atomically; in-flight readers keep the snapshot
    /// they already hold. Writers are serialized against each other but
    /// never block readers.
    pub fn publish(&self, data: T) -> u64 {
        let mut retired = self.retired.lock().expect("snapshot writer lock poisoned");
        let generation = self.generation.load(SeqCst) + 1;
        let next = Arc::into_raw(Arc::new(Snapshot { generation, data })) as *mut Snapshot<T>;
        let old = self.current.swap(next, SeqCst);
        self.generation.store(generation, SeqCst);
        retired.push(old);
        Self::reclaim_locked(&mut retired, &self.readers);
        generation
    }

    /// Frees retired snapshots if no reader is currently in its load
    /// window. Called opportunistically by `publish`; also available to
    /// periodic maintenance. Returns how many snapshots were freed.
    pub fn reclaim(&self) -> usize {
        let mut retired = self.retired.lock().expect("snapshot writer lock poisoned");
        Self::reclaim_locked(&mut retired, &self.readers)
    }

    /// Number of replaced snapshots awaiting reclamation (0 in quiescence).
    pub fn retired_count(&self) -> usize {
        self.retired.lock().expect("snapshot writer lock poisoned").len()
    }

    fn reclaim_locked(retired: &mut Vec<*mut Snapshot<T>>, readers: &[PaddedCounter; STRIPES]) -> usize {
        if retired.is_empty() {
            return 0;
        }
        // SeqCst: if every stripe reads zero *after* the pointer swap, then
        // any reader still holding a retired pointer has already cloned its
        // Arc (its decrement is ordered before our read), and any reader
        // that increments after our read will load the new pointer. Either
        // way, dropping the cell's reference to the retired snapshots below
        // cannot free memory a reader is about to touch.
        if readers.iter().any(|slot| slot.0.load(SeqCst) != 0) {
            return 0;
        }
        let freed = retired.len();
        for ptr in retired.drain(..) {
            // SAFETY: each retired pointer is a unique `Arc::into_raw` whose
            // cell-owned reference has not been dropped yet.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
        freed
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        // `&mut self`: no readers can exist, every pointer is safe to free.
        let retired = self.retired.get_mut().map(std::mem::take).unwrap_or_default();
        for ptr in retired {
            unsafe { drop(Arc::from_raw(ptr)) };
        }
        let current = *self.current.get_mut();
        unsafe { drop(Arc::from_raw(current)) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("generation", &self.generation())
            .field("retired", &self.retired_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_the_published_snapshot_with_its_generation() {
        let cell = SnapshotCell::new(vec![1, 2, 3]);
        let first = cell.load();
        assert_eq!(first.generation(), 0);
        assert_eq!(**first, vec![1, 2, 3]);
        assert_eq!(cell.publish(vec![4]), 1);
        assert_eq!(cell.generation(), 1);
        let second = cell.load();
        assert_eq!(second.generation(), 1);
        assert_eq!(**second, vec![4]);
        // The old snapshot stays valid for holders.
        assert_eq!(**first, vec![1, 2, 3]);
    }

    /// A payload that counts its drops, to observe reclamation.
    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn replaced_snapshots_are_reclaimed_in_quiescence() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(DropCounter(Arc::clone(&drops)));
        for _ in 0..10 {
            cell.publish(DropCounter(Arc::clone(&drops)));
        }
        // No readers: every publish reclaims the snapshot it replaced.
        assert_eq!(drops.load(SeqCst), 10);
        assert_eq!(cell.retired_count(), 0);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 11, "the final snapshot is freed on drop");
    }

    #[test]
    fn holders_keep_old_snapshots_alive_until_dropped() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = SnapshotCell::new(DropCounter(Arc::clone(&drops)));
        let held = cell.load();
        cell.publish(DropCounter(Arc::clone(&drops)));
        // The cell's reference was reclaimed (no reader is mid-load), but
        // the holder's Arc keeps the payload alive.
        assert_eq!(cell.retired_count(), 0);
        assert_eq!(drops.load(SeqCst), 0);
        drop(held);
        assert_eq!(drops.load(SeqCst), 1);
    }

    #[test]
    fn readers_never_observe_a_half_published_snapshot() {
        // The interleaving stress test of the publication protocol: the
        // payload carries a checksum derived from its generation, and every
        // reader verifies the invariant. A torn or half-published snapshot
        // (pointer swapped before the payload is complete, or a freed
        // payload read after reclamation) would break the checksum or crash.
        #[derive(Debug)]
        struct Checked {
            tag: u64,
            words: Vec<u64>,
        }
        impl Checked {
            fn new(tag: u64) -> Self {
                Checked { tag, words: (0..64).map(|i| tag.wrapping_mul(31).wrapping_add(i)).collect() }
            }
            fn verify(&self) {
                for (i, word) in self.words.iter().enumerate() {
                    assert_eq!(*word, self.tag.wrapping_mul(31).wrapping_add(i as u64), "torn snapshot");
                }
            }
        }

        let cell = Arc::new(SnapshotCell::new(Checked::new(0)));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_generation = 0;
                    let mut loads = 0u64;
                    while stop.load(SeqCst) == 0 {
                        let snapshot = cell.load();
                        snapshot.verify();
                        // Generations are monotone from any reader's view.
                        assert!(snapshot.generation() >= last_generation, "generation went backwards");
                        // The payload matches the generation it was
                        // published under (publication is atomic).
                        assert_eq!(snapshot.tag, snapshot.generation(), "payload from another generation");
                        last_generation = snapshot.generation();
                        loads += 1;
                    }
                    loads
                })
            })
            .collect();

        let mut generation = 0;
        for _ in 0..2_000 {
            generation = cell.publish(Checked::new(generation + 1));
        }
        stop.store(1, SeqCst);
        let total_loads: u64 = readers.into_iter().map(|r| r.join().expect("reader panicked")).sum();
        assert!(total_loads > 0);
        assert_eq!(cell.generation(), 2_000);
        // With all readers stopped, one more publish reclaims everything.
        cell.publish(Checked::new(2_001));
        cell.reclaim();
        assert_eq!(cell.retired_count(), 0, "quiescent reclamation must drain the retired list");
    }

    #[test]
    fn concurrent_writers_serialize_and_never_lose_generations() {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..250 {
                        cell.publish(0);
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().expect("writer panicked");
        }
        assert_eq!(cell.generation(), 1_000);
    }
}
