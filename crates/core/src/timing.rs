//! Stage-timing seam: where a repair request spends its time.
//!
//! The serving layer needs to attribute each request's latency to the
//! pipeline stages of the paper — parse/analysis, cluster matching (§4),
//! the ILP minimal-repair solve (§5), Theorem 5.3 verification — plus the
//! service-side stages around them (cache probe, snapshot resolve, learn).
//! `clara-core` cannot depend on the server crate, so this module is the
//! seam between the two: the core pipeline drops lightweight [`StageTimer`]
//! guards around its stages, and whoever hosts the process installs a
//! [`StageSink`] (once, at startup) to receive `(stage, nanos)` samples.
//!
//! Two consumers observe every sample:
//!
//! * the **global sink** — process-wide latency histograms, thread-safe,
//!   fed from any thread (including the scoped threads of a parallel
//!   per-cluster repair);
//! * an optional **thread-local collector** — the per-request span list
//!   ("span tree") captured by [`collect`] around one request, used for
//!   slow-request dumps. Work farmed out to other threads is re-attached
//!   with [`adopt`].
//!
//! With no sink installed and no collector active, a timer costs two
//! `Instant::now()` calls and two thread-local reads — cheap enough to
//! leave in release builds.

use std::cell::RefCell;
use std::sync::OnceLock;
use std::time::Instant;

/// A pipeline stage a request can spend time in.
///
/// The wire/metric names (see [`Stage::as_str`]) are stable: they appear in
/// Prometheus label values, span dumps and the benchmark's
/// `latency_breakdown` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Frontend parsing of the submission source.
    Parse,
    /// Result-cache probe (striped LRU lookup).
    CacheProbe,
    /// Cluster-index snapshot resolution.
    SnapshotResolve,
    /// Pre-search candidate retrieval: scoring the cluster index's n-gram
    /// and behaviour buckets to shortlist top-k clusters before any
    /// trace-based matching runs (search–align–repair).
    CandidateSearch,
    /// Dynamic-equivalence matching against cluster representatives (§4).
    ClusterMatch,
    /// Semantic-signature evaluation for expression matching (Def. 4.5).
    SigCache,
    /// Building and solving the 0-1 ILP for a minimal repair (§5).
    Ilp,
    /// Theorem 5.3 verification of the winning repair.
    Verify,
    /// Online insertion of a verified-correct submission into the index.
    Learn,
    /// Router-side replication of a learn to the ring successor.
    Replicate,
}

impl Stage {
    /// Every stage, in pipeline order (drives metric registration and the
    /// benchmark's breakdown table).
    pub const ALL: [Stage; 10] = [
        Stage::Parse,
        Stage::CacheProbe,
        Stage::SnapshotResolve,
        Stage::CandidateSearch,
        Stage::ClusterMatch,
        Stage::SigCache,
        Stage::Ilp,
        Stage::Verify,
        Stage::Learn,
        Stage::Replicate,
    ];

    /// The stable metric/label name of the stage.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::CacheProbe => "cache_probe",
            Stage::SnapshotResolve => "snapshot_resolve",
            Stage::CandidateSearch => "candidate_search",
            Stage::ClusterMatch => "cluster_match",
            Stage::SigCache => "sigcache",
            Stage::Ilp => "ilp",
            Stage::Verify => "verify",
            Stage::Learn => "learn",
            Stage::Replicate => "replicate",
        }
    }
}

/// Receiver of stage-duration samples. Implemented by the serving layer's
/// metrics registry; must be callable from any thread.
pub trait StageSink: Send + Sync {
    /// One completed stage took `nanos` nanoseconds.
    fn record(&self, stage: Stage, nanos: u64);
}

static SINK: OnceLock<&'static dyn StageSink> = OnceLock::new();

/// Installs the process-wide stage sink. The first installation wins (the
/// seam is set up once at startup); returns whether this call installed it.
pub fn install_sink(sink: &'static dyn StageSink) -> bool {
    SINK.set(sink).is_ok()
}

/// One recorded stage duration within a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The stage the time was spent in.
    pub stage: Stage,
    /// Duration in nanoseconds.
    pub nanos: u64,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Vec<Span>>> = const { RefCell::new(None) };
}

/// Runs `f` with a fresh span collector active on this thread and returns
/// its result together with every span recorded during the call (in
/// completion order — nested guards complete innermost-first). Collections
/// nest: an inner `collect` temporarily shadows the outer one.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<Span>) {
    let previous = COLLECTOR.with(|c| c.borrow_mut().replace(Vec::new()));
    let result = f();
    let spans = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let spans = slot.take().unwrap_or_default();
        *slot = previous;
        spans
    });
    (result, spans)
}

/// Appends spans recorded elsewhere (typically on a scoped worker thread of
/// a parallel per-cluster repair) to this thread's active collector. A
/// no-op when no collection is active.
pub fn adopt(spans: Vec<Span>) {
    if spans.is_empty() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(active) = c.borrow_mut().as_mut() {
            active.extend(spans);
        }
    });
}

/// A drop guard timing one stage: construct at stage entry, drop at exit.
/// On drop the duration is delivered to the installed [`StageSink`] and to
/// this thread's active collector (if any).
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    start: Instant,
}

impl StageTimer {
    /// Starts timing `stage`.
    pub fn start(stage: Stage) -> StageTimer {
        StageTimer { stage, start: Instant::now() }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(sink) = SINK.get() {
            sink.record(self.stage, nanos);
        }
        COLLECTOR.with(|c| {
            if let Some(active) = c.borrow_mut().as_mut() {
                active.push(Span { stage: self.stage, nanos });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable_and_distinct() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(names.len(), 10);
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate stage name in {names:?}");
        assert!(names.contains(&"ilp") && names.contains(&"verify"));
    }

    #[test]
    fn collect_captures_spans_in_completion_order() {
        let ((), spans) = collect(|| {
            let _outer = StageTimer::start(Stage::ClusterMatch);
            let inner = StageTimer::start(Stage::Ilp);
            drop(inner);
        });
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Ilp, "inner guard completes first");
        assert_eq!(spans[1].stage, Stage::ClusterMatch);
    }

    #[test]
    fn timers_outside_a_collection_are_dropped_silently() {
        drop(StageTimer::start(Stage::Parse));
        let ((), spans) = collect(|| {});
        assert!(spans.is_empty());
    }

    #[test]
    fn nested_collections_shadow_and_restore() {
        let ((), outer) = collect(|| {
            drop(StageTimer::start(Stage::Parse));
            let ((), inner) = collect(|| drop(StageTimer::start(Stage::Verify)));
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].stage, Stage::Verify);
            drop(StageTimer::start(Stage::Learn));
        });
        let stages: Vec<Stage> = outer.iter().map(|s| s.stage).collect();
        assert_eq!(stages, [Stage::Parse, Stage::Learn], "inner collection's spans stay inner");
    }

    #[test]
    fn adopt_merges_spans_from_other_threads() {
        let ((), spans) = collect(|| {
            let child = std::thread::spawn(|| collect(|| drop(StageTimer::start(Stage::Ilp))).1);
            adopt(child.join().expect("child thread"));
        });
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::Ilp);
        // Adopting outside any collection is a quiet no-op.
        adopt(vec![Span { stage: Stage::Parse, nanos: 1 }]);
    }
}
