//! # clara-core — clustering and minimal program repair
//!
//! This crate implements the two contributions of *"Automated Clustering and
//! Program Repair for Introductory Programming Assignments"* (PLDI 2018):
//!
//! * [`matching`] / [`cluster`]: dynamic-equivalence matching of correct
//!   student solutions (§4) and their grouping into clusters, including the
//!   mining of dynamically equivalent expression variants;
//! * [`repair`]: the fully automated repair of incorrect attempts against
//!   those clusters (§5), selecting a minimal consistent set of local repairs
//!   with a 0-1 ILP; and
//! * [`feedback`]: textual feedback generation from the minimal repair
//!   (§6.1).
//!
//! The [`Clara`] engine bundles the full pipeline of Fig. 1: ingest correct
//! solutions, cluster them, then repair incorrect attempts and render
//! feedback.
//!
//! ```rust
//! use clara_core::{Clara, ClaraConfig};
//! use clara_lang::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let poly = |xs: &[f64]| Value::List(xs.iter().map(|x| Value::Float(*x)).collect());
//! let inputs = vec![
//!     vec![poly(&[6.3, 7.6, 12.14])],
//!     vec![poly(&[3.0])],
//!     vec![poly(&[1.0, 2.0, 3.0, 4.0])],
//! ];
//! let mut clara = Clara::new("computeDeriv", inputs, ClaraConfig::default());
//! clara.add_correct_solution(
//!     "def computeDeriv(poly):\n    result = []\n    for e in range(1, len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
//! )?;
//! let outcome = clara.repair_source(
//!     "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n",
//! )?;
//! let repair = outcome.result.best.expect("repairable");
//! assert!(repair.total_cost > 0);
//! assert!(outcome.feedback.is_repair_feedback());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod align;
pub mod analysis;
pub mod cluster;
pub mod feedback;
pub mod frontends;
pub mod index;
pub mod matching;
pub mod oracle;
pub mod repair;
pub mod sigcache;
pub mod snapshot;
pub mod timing;

pub use align::{alignment_candidates, realign_attempt, traces_agree};
pub use analysis::{AnalysisError, AnalyzedProgram};
pub use cluster::{
    cluster_programs, clustering_stats, compact_clusters, Cluster, ClusteringStats, CompactionConfig,
};
pub use feedback::{generic_strategy, render_feedback, Feedback, FeedbackOptions};
pub use frontends::frontend;
pub use index::{behaviour_signals, surface_ngrams, CandidateIndex, QuerySignals, Retrieval};
pub use matching::{apply_var_map, exprs_match, find_matching, VarMap};
pub use oracle::{DifferentialOracle, OracleVerdict, RepairCheck};
pub use repair::{
    repair_against_cluster, repair_attempt, repair_attempt_retrieved, ClusterRepair, RepairAction,
    RepairConfig, RepairFailure, RepairResult, RetrievalOutcome,
};
pub use sigcache::{SignatureCache, ValueSignature};
pub use snapshot::{Snapshot, SnapshotCell};
pub use timing::{Span, Stage, StageSink, StageTimer};

use clara_lang::Value;
use clara_model::frontend::Lang;
use clara_model::Fuel;

/// Configuration of the end-to-end [`Clara`] engine.
#[derive(Debug, Clone, Default)]
pub struct ClaraConfig {
    /// Repair-algorithm configuration.
    pub repair: RepairConfig,
    /// Feedback rendering options.
    pub feedback: FeedbackOptions,
    /// Bounds on stored cluster state, applied after every insertion.
    pub compaction: CompactionConfig,
}

/// The end-to-end pipeline of Fig. 1: cluster correct solutions, repair
/// incorrect attempts, render feedback.
#[derive(Debug, Clone)]
pub struct Clara {
    entry: String,
    lang: Lang,
    inputs: Vec<Vec<Value>>,
    config: ClaraConfig,
    clusters: Vec<Cluster>,
    index: CandidateIndex,
    correct_count: usize,
}

/// The result of repairing one attempt with the [`Clara`] engine.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The raw result of the repair algorithm.
    pub result: RepairResult,
    /// The rendered feedback (generic strategy text if the repair is large,
    /// `Feedback::Correct` if no change is needed).
    pub feedback: Feedback,
}

impl Clara {
    /// Creates an engine for a MiniPy assignment whose entry function is
    /// `entry` and whose grading inputs are `inputs` (the set `I` of the
    /// paper).
    pub fn new(entry: impl Into<String>, inputs: Vec<Vec<Value>>, config: ClaraConfig) -> Self {
        Self::new_in(Lang::MiniPy, entry, inputs, config)
    }

    /// Creates an engine for an assignment whose submissions are written in
    /// `lang`; feedback expressions render in that language's syntax.
    pub fn new_in(
        lang: Lang,
        entry: impl Into<String>,
        inputs: Vec<Vec<Value>>,
        mut config: ClaraConfig,
    ) -> Self {
        config.feedback.lang = lang;
        Clara {
            entry: entry.into(),
            lang,
            inputs,
            config,
            clusters: Vec::new(),
            index: CandidateIndex::new(),
            correct_count: 0,
        }
    }

    /// The language this engine parses and renders.
    pub fn lang(&self) -> Lang {
        self.lang
    }

    /// The clusters built so far.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of correct solutions ingested so far.
    pub fn correct_count(&self) -> usize {
        self.correct_count
    }

    /// Summary statistics of the current clustering.
    pub fn clustering_stats(&self) -> ClusteringStats {
        clustering_stats(&self.clusters)
    }

    /// Adds a correct solution (source text) to the cluster pool and returns
    /// the index of the cluster it was placed into (online clustering, §2).
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisError`] if the solution cannot be parsed or
    /// lowered; such solutions are simply not usable for repair.
    pub fn add_correct_solution(&mut self, source: &str) -> Result<usize, AnalysisError> {
        let analyzed = AnalyzedProgram::from_text_in(
            self.lang,
            source,
            &self.entry,
            &self.inputs,
            self.config.repair.fuel,
        )?;
        // Best-effort surface IR for the structural retrieval signal; the
        // behaviour signal alone still indexes the cluster if lowering to
        // surface form fails.
        let surface = frontend(self.lang).parse(source).ok().and_then(|p| p.surface(&self.entry).ok());
        Ok(self.add_correct_with_surface(analyzed, surface.as_ref()))
    }

    /// Adds an already-analysed correct solution to the cluster pool and
    /// returns the index of the cluster it was placed into.
    pub fn add_correct_analyzed(&mut self, analyzed: AnalyzedProgram) -> usize {
        self.add_correct_with_surface(analyzed, None)
    }

    /// Adds an analysed correct solution together with its (optional)
    /// surface IR, which feeds the structural signal of the candidate
    /// retrieval index.
    pub fn add_correct_with_surface(
        &mut self,
        analyzed: AnalyzedProgram,
        surface: Option<&clara_model::surface::SurfaceFunction>,
    ) -> usize {
        let signals = QuerySignals::for_program(&analyzed, surface);
        self.correct_count += 1;
        // Incremental clustering: try to place the solution into an existing
        // cluster, otherwise open a new one.
        let mut placed = None;
        for (index, cluster) in self.clusters.iter_mut().enumerate() {
            if cluster.representative.fingerprint == analyzed.fingerprint {
                if let Some(witness) = find_matching(&cluster.representative, &analyzed) {
                    cluster.absorb_member(&analyzed, &witness, self.correct_count - 1);
                    placed = Some(index);
                    break;
                }
            }
        }
        let index = placed.unwrap_or_else(|| {
            self.clusters.extend(cluster_programs(vec![analyzed]));
            self.clusters.len() - 1
        });
        self.index.record(index, &signals);
        self.compact_after_insert(index);
        index
    }

    /// Applies the compaction budget after an insertion into cluster
    /// `touched`: the touched cluster's slots are capped, and when the
    /// cluster count exceeds its budget the global demotion pass runs.
    fn compact_after_insert(&mut self, touched: usize) {
        let limits = self.config.compaction.clone();
        self.clusters[touched].cap_expression_slots(limits.max_exprs_per_slot);
        if self.clusters.len() > limits.max_full_clusters {
            compact_clusters(&mut self.clusters, &limits);
        }
    }

    /// Reconstructs a MiniPy engine from previously built clusters (the
    /// warm-start path of the persistent cluster index): no matching runs,
    /// the clusters are trusted as-is.
    pub fn restore(
        entry: impl Into<String>,
        inputs: Vec<Vec<Value>>,
        config: ClaraConfig,
        clusters: Vec<Cluster>,
        correct_count: usize,
    ) -> Self {
        Self::restore_in(Lang::MiniPy, entry, inputs, config, clusters, correct_count)
    }

    /// Reconstructs an engine for `lang` from previously built clusters
    /// (see [`Clara::restore`]).
    pub fn restore_in(
        lang: Lang,
        entry: impl Into<String>,
        inputs: Vec<Vec<Value>>,
        mut config: ClaraConfig,
        clusters: Vec<Cluster>,
        correct_count: usize,
    ) -> Self {
        config.feedback.lang = lang;
        // Seed retrieval from the representatives' behaviour signals; the
        // host can replace this with a persisted index (carrying the full
        // member-accumulated signals) via
        // [`Clara::install_candidate_index`].
        let mut index = CandidateIndex::new();
        for (i, cluster) in clusters.iter().enumerate() {
            index.record(i, &QuerySignals::for_program(&cluster.representative, None));
        }
        Clara { entry: entry.into(), lang, inputs, config, clusters, index, correct_count }
    }

    /// The candidate retrieval index over the current clusters.
    pub fn candidate_index(&self) -> &CandidateIndex {
        &self.index
    }

    /// Replaces the retrieval index wholesale — the warm-start path when a
    /// persisted index (with member-accumulated signals) is available. The
    /// index must describe the engine's clusters in order; extra trailing
    /// entries are not permitted.
    ///
    /// # Panics
    ///
    /// Panics if the index covers more clusters than the engine holds.
    pub fn install_candidate_index(&mut self, index: CandidateIndex) {
        assert!(
            index.len() <= self.clusters.len(),
            "candidate index covers {} clusters but the engine holds {}",
            index.len(),
            self.clusters.len()
        );
        self.index = index;
    }

    /// The engine configuration.
    pub fn config(&self) -> &ClaraConfig {
        &self.config
    }

    /// Repairs an incorrect attempt given as source text and renders
    /// feedback.
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisError`] if the attempt cannot be parsed or
    /// lowered (these are the "unsupported feature" failures of §6.2).
    pub fn repair_source(&self, source: &str) -> Result<RepairOutcome, AnalysisError> {
        let attempt = AnalyzedProgram::from_text_in(
            self.lang,
            source,
            &self.entry,
            &self.inputs,
            self.config.repair.fuel,
        )?;
        // The surface IR feeds both the structural retrieval signal and the
        // flexible-alignment fallback, so it is built whenever either is on.
        let wants_surface = (self.config.repair.use_candidate_index && !self.index.is_empty())
            || self.config.repair.flexible_alignment;
        let surface = if wants_surface {
            frontend(self.lang).parse(source).ok().and_then(|p| p.surface(&self.entry).ok())
        } else {
            None
        };
        Ok(self.repair_with_surface(&attempt, surface.as_ref()))
    }

    /// Repairs an already-analysed incorrect attempt. Candidate retrieval
    /// runs on the behaviour signal alone (no source text is available
    /// here); [`Clara::repair_source`] adds the structural signal.
    pub fn repair_analyzed(&self, attempt: &AnalyzedProgram) -> RepairOutcome {
        self.repair_with_surface(attempt, None)
    }

    /// Repairs an analysed attempt, using its surface IR (when available)
    /// for the structural half of the candidate pre-search.
    pub fn repair_with_surface(
        &self,
        attempt: &AnalyzedProgram,
        surface: Option<&clara_model::surface::SurfaceFunction>,
    ) -> RepairOutcome {
        let query = if self.config.repair.use_candidate_index && !self.index.is_empty() {
            let _timer = StageTimer::start(Stage::CandidateSearch);
            Some(QuerySignals::for_program(attempt, surface))
        } else {
            None
        };
        let mut result = repair_attempt_retrieved(
            &self.clusters,
            query.as_ref().map(|q| (&self.index, q)),
            attempt,
            &self.inputs,
            &self.config.repair,
        );
        // Structure-mismatch fallback (§6.2 (1)): when no cluster shares the
        // attempt's control flow, normalize the attempt's surface IR and
        // retry. Soundness is preserved — the repair the fallback returns
        // was matcher-verified against its cluster, and the normalized
        // program agrees with the attempt on every grading input.
        let mut normalized: Option<AnalyzedProgram> = None;
        if result.best.is_none()
            && result.failure == Some(RepairFailure::NoMatchingControlFlow)
            && self.config.repair.flexible_alignment
        {
            if let Some(surface) = surface {
                if let Some((aligned, program)) = align::realign_attempt(
                    &self.clusters,
                    attempt,
                    surface,
                    &self.inputs,
                    &self.config.repair,
                ) {
                    result = aligned;
                    normalized = Some(program);
                }
            }
        }
        // Feedback lines must point into the program the repair actions
        // refer to: the normalized program when the alignment fallback ran.
        let feedback_program = normalized.as_ref().map_or(&attempt.program, |n| &n.program);
        let feedback = match &result.best {
            Some(repair) => render_feedback(repair, feedback_program, &self.config.feedback),
            None => Feedback::GenericStrategy(generic_strategy(&attempt.program)),
        };
        RepairOutcome { result, feedback }
    }

    /// The grading inputs of the assignment.
    pub fn inputs(&self) -> &[Vec<Value>] {
        &self.inputs
    }

    /// The execution fuel used for analysis.
    pub fn fuel(&self) -> Fuel {
        self.config.repair.fuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_model::Loc;

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    fn inputs() -> Vec<Vec<Value>> {
        vec![
            vec![poly(&[6.3, 7.6, 12.14])],
            vec![poly(&[3.0])],
            vec![poly(&[1.0, 2.0, 3.0, 4.0])],
            vec![poly(&[])],
        ]
    }

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

    const I1: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

    const I2: &str = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i]=float((i)*poly[i])
    return result
";

    fn engine(correct: &[&str]) -> Clara {
        let mut clara = Clara::new("computeDeriv", inputs(), ClaraConfig::default());
        for src in correct {
            clara.add_correct_solution(src).unwrap();
        }
        clara
    }

    #[test]
    fn i1_gets_the_papers_small_repair() {
        // Fig. 2(g): the only required change is in the return statement.
        let clara = engine(&[C1, C2]);
        assert_eq!(clara.clusters().len(), 1);
        let outcome = clara.repair_source(I1).unwrap();
        let repair = outcome.result.best.expect("I1 is repairable");
        assert_eq!(repair.verified, Some(true));
        // Only the return expression needs a (cost > 0) modification.
        let costly: Vec<_> = repair.actions.iter().filter(|a| a.cost() > 0).collect();
        assert_eq!(costly.len(), 1, "expected exactly one modification, got {costly:?}");
        match costly[0] {
            RepairAction::Modify { var, loc, .. } => {
                assert_eq!(var, "return");
                assert_eq!(*loc, Loc(3));
            }
            other => panic!("expected a modification of the return statement, got {other:?}"),
        }
        // The relative repair size reported in the paper for Fig. 2(g) is
        // 0.03 — ours must also be small.
        assert!(repair.total_cost <= 3, "cost was {}", repair.total_cost);
    }

    #[test]
    fn i2_gets_a_repair_with_the_three_modifications() {
        // Fig. 2(h): iterator expression, loop-body assignment, return.
        let clara = engine(&[C1, C2]);
        let outcome = clara.repair_source(I2).unwrap();
        let repair = outcome.result.best.expect("I2 is repairable");
        assert_eq!(repair.verified, Some(true));
        let costly: Vec<_> = repair.actions.iter().filter(|a| a.cost() > 0).collect();
        assert!(
            (2..=4).contains(&costly.len()),
            "expected the paper's ~3 modifications, got {}: {costly:?}",
            costly.len()
        );
        // The iterator expression (the `for` iterable) must be among them.
        assert!(
            repair
                .actions
                .iter()
                .any(|a| matches!(a, RepairAction::Modify { var, .. } if var.starts_with("#it"))),
            "expected an iterator-expression modification: {:?}",
            repair.actions
        );
        let feedback = outcome.feedback;
        assert!(feedback.is_repair_feedback());
        let text = feedback.lines().join("\n");
        assert!(text.contains("iterator expression"), "feedback: {text}");
    }

    #[test]
    fn correct_attempts_repair_with_zero_cost() {
        let clara = engine(&[C1, C2]);
        let outcome = clara.repair_source(C2).unwrap();
        let repair = outcome.result.best.unwrap();
        assert_eq!(repair.total_cost, 0);
        assert_eq!(outcome.feedback, Feedback::Correct);
    }

    #[test]
    fn clustering_is_incremental() {
        let clara = engine(&[C1, C2, C1, C2]);
        assert_eq!(clara.correct_count(), 4);
        assert_eq!(clara.clusters().len(), 1);
        assert_eq!(clara.clustering_stats().largest_cluster, 4);
    }

    #[test]
    fn attempts_without_matching_control_flow_fail_gracefully() {
        let clara = engine(&[C1]);
        // A nested-loop attempt cannot be repaired against a single-loop
        // cluster (§6.2 (1): 35 such failures in the MOOC experiment).
        let nested = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        for j in range(i):
            result.append(float(poly[i]))
    return result
";
        let outcome = clara.repair_source(nested).unwrap();
        assert!(outcome.result.best.is_none());
        assert_eq!(outcome.result.failure, Some(RepairFailure::NoMatchingControlFlow));
        assert!(matches!(outcome.feedback, Feedback::GenericStrategy(_)));
    }

    #[test]
    fn unsupported_attempts_are_reported_as_analysis_errors() {
        let clara = engine(&[C1]);
        let err = clara
            .repair_source(
                "def helper(x):\n    return x\n\ndef computeDeriv(poly):\n    return helper(poly)\n",
            )
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)));
    }

    #[test]
    fn empty_attempts_get_the_trivial_rewrite() {
        let clara = engine(&[C1, C2]);
        let outcome = clara.repair_source("def computeDeriv(poly):\n    pass\n").unwrap();
        let repair = outcome.result.best.expect("empty attempts are repaired by rewrite");
        assert!(repair.total_cost > 5);
        assert!(repair.relative_size(0).is_infinite());
    }

    #[test]
    fn repairs_can_combine_expressions_from_different_solutions() {
        // C2 contributes `deriv + [float(i)*poly[i]]`; an attempt whose loop
        // body is close to that form should be repaired using C2's
        // expression even though the representative is C1.
        let clara = engine(&[C1, C2]);
        let attempt = "\
def computeDeriv(poly):
    out = []
    for i in xrange(1,len(poly)):
        out += [float(i)*poly[i+1]]
    if len(out)==0:
        return [0.0]
    return out
";
        let outcome = clara.repair_source(attempt).unwrap();
        let repair = outcome.result.best.expect("repairable");
        assert_eq!(repair.verified, Some(true));
        assert!(repair.total_cost <= 3, "expected a small repair, cost was {}", repair.total_cost);
    }
}
