//! The repair algorithm (§5 of the paper).
//!
//! Given an incorrect implementation and a cluster of correct solutions with
//! the same control flow, the algorithm
//!
//! 1. generates *local repairs* for every location/variable pair of the
//!    implementation (Fig. 5): either the implementation expression already
//!    matches a representative expression under a partial variable relation
//!    (`(ω, •)`), or a cluster expression translated to implementation
//!    variables replaces it (`(ω⁻¹, ω(e))`);
//! 2. selects a consistent, minimal-cost subset of local repairs by encoding
//!    constraints (1)–(4) of Definition 5.5 as a 0-1 ILP and solving it with
//!    `clara-ilp`;
//! 3. decodes the solution into concrete [`RepairAction`]s, builds the
//!    repaired program, and (optionally) verifies the soundness theorem
//!    `P_C ∼_I P_repaired` (Theorem 5.3) by re-running the matcher.
//!
//! Variable addition and deletion (the `⋆` / `−` extension of §5) is
//! supported: every cluster variable may map to a fresh implementation
//! variable and every implementation variable may be deleted, which makes the
//! trivial repair always available and the algorithm complete for clusters
//! with matching control flow.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use clara_ilp::{IlpBuilder, SolveLimits, VarId};
use clara_lang::{Expr, Value};
use clara_model::{Fuel, Loc, Program};
use clara_ted::{expr_tree_size, prepared_edit_distance, PreparedTree};

use crate::analysis::AnalyzedProgram;
use crate::cluster::Cluster;
use crate::index::{CandidateIndex, QuerySignals};
use crate::matching::{exprs_match, find_matching, pinned, vars_compatible, VarMap};
use crate::sigcache::SignatureCache;

/// Configuration of the repair algorithm.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Execution fuel used when re-running repaired programs for
    /// verification.
    pub fuel: Fuel,
    /// Cap on the number of partial variable relations enumerated per
    /// expression (the iteration of lines 9 and 13 in Fig. 5).
    pub max_relations_per_expr: usize,
    /// Branch-and-bound budget of the ILP solver.
    pub ilp_limits: SolveLimits,
    /// Verify `P_C ∼_I P_repaired` after decoding (Theorem 5.3).
    pub verify: bool,
    /// Process clusters on multiple threads (the paper notes Clara processes
    /// clusters in parallel, §6.2 "Clusters").
    pub parallel: bool,
    /// Answer expression-matching queries through the per-cluster
    /// [`SignatureCache`] (each distinct expression is evaluated once per
    /// location) instead of re-evaluating both expressions pairwise per
    /// query. The two paths are equivalent (property-tested); the flag
    /// exists so equivalence can be asserted end to end and regressions
    /// bisected.
    pub use_signature_cache: bool,
    /// Shortlist candidate clusters through the pre-search
    /// [`CandidateIndex`] before any trace-based matching runs
    /// (search–align–repair). Mirrors the `use_signature_cache` seam:
    /// retrieval never changes the repaired/no-repair verdict — a
    /// low-confidence query or an empty-handed shortlist falls back to the
    /// full scan — so the flag exists to assert equivalence end to end and
    /// to bisect regressions.
    pub use_candidate_index: bool,
    /// How many clusters the pre-search shortlists (the top-k of the
    /// overlap ranking).
    pub candidate_top_k: usize,
    /// Minimum overlap score the best-ranked cluster must reach for the
    /// shortlist to be trusted; below it the overlap evidence is noise and
    /// the repair scans every candidate.
    pub candidate_min_score: u32,
    /// When the strict repair fails with
    /// [`RepairFailure::NoMatchingControlFlow`], retry through the
    /// flexible-alignment fallback (see [`crate::align`]): the attempt's
    /// surface IR is normalized through loop drop/unwrap/merge rewrites,
    /// trace-agreement-gated, and re-repaired. Soundness (Theorem 5.3) is
    /// unaffected — the matcher still verifies every accepted repair.
    pub flexible_alignment: bool,
    /// Cap on the number of normalization candidates the alignment fallback
    /// lowers and re-executes per attempt.
    pub max_alignment_candidates: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            fuel: Fuel::default(),
            max_relations_per_expr: 2_000,
            ilp_limits: SolveLimits::default(),
            verify: true,
            parallel: true,
            use_signature_cache: true,
            use_candidate_index: true,
            candidate_top_k: 16,
            candidate_min_score: 3,
            flexible_alignment: true,
            max_alignment_candidates: 16,
        }
    }
}

/// One concrete modification of the implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairAction {
    /// Replace the expression assigned to `var` at `loc`.
    Modify {
        /// Location of the modification.
        loc: Loc,
        /// The implementation variable whose update changes.
        var: String,
        /// Source line of the original expression, if known.
        line: Option<u32>,
        /// The original expression.
        old: Expr,
        /// The replacement expression (over implementation variables).
        new: Expr,
        /// Tree-edit-distance cost of this modification.
        cost: i64,
    },
    /// Add an assignment for a freshly introduced variable.
    AddAssignment {
        /// Location of the new assignment.
        loc: Loc,
        /// Name of the fresh variable.
        var: String,
        /// The assigned expression (over implementation variables).
        expr: Expr,
        /// Cost (AST size of the added expression).
        cost: i64,
    },
    /// Delete the assignment of a removed variable.
    DeleteAssignment {
        /// Location of the deleted assignment.
        loc: Loc,
        /// The deleted variable.
        var: String,
        /// The expression that was assigned.
        old: Expr,
        /// Cost (AST size of the removed expression).
        cost: i64,
    },
}

impl RepairAction {
    /// The cost contribution of the action.
    pub fn cost(&self) -> i64 {
        match self {
            RepairAction::Modify { cost, .. }
            | RepairAction::AddAssignment { cost, .. }
            | RepairAction::DeleteAssignment { cost, .. } => *cost,
        }
    }
}

/// The repair produced against one cluster.
#[derive(Debug, Clone)]
pub struct ClusterRepair {
    /// Index of the cluster (into the slice passed to [`repair_attempt`]).
    pub cluster_index: usize,
    /// Total cost (the ILP objective).
    pub total_cost: i64,
    /// The concrete modifications, in location order.
    pub actions: Vec<RepairAction>,
    /// The total variable relation `τ` for kept variables
    /// (implementation variable → representative variable).
    pub var_map: VarMap,
    /// Freshly added variables: `(representative variable, fresh name)`.
    pub added_vars: Vec<(String, String)>,
    /// Deleted implementation variables.
    pub deleted_vars: Vec<String>,
    /// The repaired model program.
    pub repaired: Program,
    /// Whether `P_C ∼_I P_repaired` was re-established by the matcher
    /// (Theorem 5.3); `None` if verification was disabled.
    pub verified: Option<bool>,
    /// `true` when the repair is the whole-program rewrite used for empty
    /// attempts (its action locations refer to the representative, not the
    /// attempt).
    pub is_rewrite: bool,
}

impl ClusterRepair {
    /// Number of modified expressions (the metric of Fig. 7).
    pub fn modified_expression_count(&self) -> usize {
        self.actions.iter().filter(|a| a.cost() > 0).count()
    }

    /// Relative repair size: cost divided by the AST size of the original
    /// program (Fig. 6). Returns `f64::INFINITY` when the original program
    /// has no expressions at all (empty attempts).
    pub fn relative_size(&self, original_ast_size: usize) -> f64 {
        if original_ast_size == 0 {
            f64::INFINITY
        } else {
            self.total_cost as f64 / original_ast_size as f64
        }
    }
}

/// Why no repair was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairFailure {
    /// No cluster has the same control flow as the attempt (the fundamental
    /// limitation discussed in §6.2 (1) and §8).
    NoMatchingControlFlow,
    /// The ILP solver exhausted its budget on every candidate cluster.
    SolverBudgetExhausted,
}

impl std::fmt::Display for RepairFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairFailure::NoMatchingControlFlow => {
                write!(f, "no correct solution with the same control flow exists")
            }
            RepairFailure::SolverBudgetExhausted => write!(f, "ILP solver budget exhausted"),
        }
    }
}

/// How the pre-search shaped one repair request (see
/// [`repair_attempt_retrieved`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrievalOutcome {
    /// Clusters with the attempt's control flow before shortlisting.
    pub control_flow_candidates: usize,
    /// Clusters the confident shortlist narrowed the scan to (equal to
    /// `control_flow_candidates` when the pool was small enough to scan
    /// outright).
    pub shortlisted: usize,
    /// Whether the full scan ran anyway — the overlap confidence was low,
    /// or the shortlisted clusters produced no repair.
    pub fell_back: bool,
}

/// The outcome of the top-level repair procedure.
#[derive(Debug, Clone)]
pub struct RepairResult {
    /// The minimal-cost repair across all candidate clusters.
    pub best: Option<ClusterRepair>,
    /// Why no repair was found (when `best` is `None`).
    pub failure: Option<RepairFailure>,
    /// Number of clusters with matching control flow that were tried
    /// (after pre-search shortlisting, when it applied).
    pub candidate_clusters: usize,
    /// How the candidate pre-search behaved; `None` when no index was
    /// consulted (retrieval disabled or not wired in).
    pub retrieval: Option<RetrievalOutcome>,
    /// `true` when the repair was found through the flexible-alignment
    /// fallback (the attempt's control flow was normalized before matching;
    /// see [`crate::align`]). Action locations then refer to the normalized
    /// program.
    pub realigned: bool,
    /// Wall-clock time of the whole repair.
    pub elapsed: Duration,
}

/// Repairs an incorrect attempt against every cluster and returns the
/// minimal-cost repair (the top-level procedure sketched in Fig. 1 and §2.2).
pub fn repair_attempt(
    clusters: &[Cluster],
    attempt: &AnalyzedProgram,
    inputs: &[Vec<Value>],
    config: &RepairConfig,
) -> RepairResult {
    repair_attempt_retrieved(clusters, None, attempt, inputs, config)
}

/// [`repair_attempt`] with an optional candidate pre-search: when an index
/// and the attempt's query signals are supplied (and
/// [`RepairConfig::use_candidate_index`] is on), overlap scoring shortlists
/// the top-k clusters and only those go through matching and the ILP. The
/// shortlist is an optimisation, never a semantic gate — a low-confidence
/// query scans everything, and a shortlist that yields no repair falls back
/// to the remaining candidates, so the repaired/no-repair verdict is
/// identical to the full scan (the repair itself may come from a different
/// cluster only when the shortlist misses the global cost optimum).
pub fn repair_attempt_retrieved(
    clusters: &[Cluster],
    retrieval: Option<(&CandidateIndex, &QuerySignals)>,
    attempt: &AnalyzedProgram,
    inputs: &[Vec<Value>],
    config: &RepairConfig,
) -> RepairResult {
    let start = Instant::now();
    let candidates: Vec<(usize, &Cluster)> = clusters
        .iter()
        .enumerate()
        .filter(|(_, c)| c.representative.program.same_control_flow(&attempt.program))
        .collect();

    if candidates.is_empty() {
        // Completely empty attempts (no expressions at all) are still
        // repaired by the trivial rewrite against the largest cluster; this
        // mirrors Clara's behaviour on the 436 empty attempts of the MOOC
        // dataset (their relative repair size is reported as ∞ in Fig. 6).
        if attempt_is_empty(&attempt.program) {
            if let Some(rewrite) = trivial_rewrite_repair(clusters, attempt) {
                return RepairResult {
                    best: Some(rewrite),
                    failure: None,
                    candidate_clusters: 0,
                    retrieval: None,
                    realigned: false,
                    elapsed: start.elapsed(),
                };
            }
        }
        return RepairResult {
            best: None,
            failure: Some(RepairFailure::NoMatchingControlFlow),
            candidate_clusters: 0,
            retrieval: None,
            realigned: false,
            elapsed: start.elapsed(),
        };
    }

    // Pre-search (search–align–repair): score the index's buckets and keep
    // only the top-k candidates for the expensive alignment below. Pools no
    // larger than k are scanned outright — the shortlist would be the whole
    // pool anyway.
    let mut outcome: Option<RetrievalOutcome> = None;
    let mut shortlist: Option<Vec<(usize, &Cluster)>> = None;
    let mut ranked: Vec<usize> = Vec::new();
    if config.use_candidate_index {
        if let Some((index, query)) = retrieval {
            let _timer = crate::timing::StageTimer::start(crate::timing::Stage::CandidateSearch);
            if candidates.len() > config.candidate_top_k && !index.is_empty() {
                let found = index.query(query, config.candidate_top_k, config.candidate_min_score);
                let keep: Vec<(usize, &Cluster)> = candidates
                    .iter()
                    .copied()
                    .filter(|(i, _)| found.shortlist.binary_search(i).is_ok())
                    .collect();
                if found.confident && !keep.is_empty() && keep.len() < candidates.len() {
                    ranked = found.ranked;
                    outcome = Some(RetrievalOutcome {
                        control_flow_candidates: candidates.len(),
                        shortlisted: keep.len(),
                        fell_back: false,
                    });
                    shortlist = Some(keep);
                } else {
                    outcome = Some(RetrievalOutcome {
                        control_flow_candidates: candidates.len(),
                        shortlisted: candidates.len(),
                        fell_back: true,
                    });
                }
            } else {
                outcome = Some(RetrievalOutcome {
                    control_flow_candidates: candidates.len(),
                    shortlisted: candidates.len(),
                    fell_back: false,
                });
            }
        }
    }

    // Per-cluster repairs run with verification off: only the winning
    // repair's `verified` flag is observable from here, so Theorem 5.3 is
    // re-established once for the minimal-cost repair instead of once per
    // candidate cluster (verification re-executes the repaired program on
    // every input and re-runs the matcher — as expensive as the repair
    // itself when many clusters share the attempt's control flow).
    let cluster_config = RepairConfig { verify: false, ..config.clone() };
    let scanned = shortlist.as_ref().unwrap_or(&candidates);
    let mut examined = scanned.len();
    let repairs = run_candidates(scanned, attempt, inputs, &cluster_config, config.parallel);

    let mut best = repairs.into_iter().flatten().min_by_key(|r| (r.total_cost, r.cluster_index));
    if best.is_none() {
        if let (Some(keep), Some((index, _))) = (&shortlist, retrieval) {
            // Empty-handed shortlist: widen over the candidates it excluded
            // so the repaired/no-repair verdict matches the full scan
            // exactly. The widening follows the retrieval ranking in
            // doubling tiers — a near-miss (the match ranked just past
            // top-k) is found after one small batch, while a genuinely
            // unrepairable attempt still degrades gracefully to the cost of
            // the full scan it would have paid anyway.
            let kept: HashSet<usize> = keep.iter().map(|(i, _)| *i).collect();
            let by_index: HashMap<usize, (usize, &Cluster)> =
                candidates.iter().map(|&(i, c)| (i, (i, c))).collect();
            let mut queue: Vec<(usize, &Cluster)> = ranked
                .iter()
                .filter(|i| !kept.contains(i))
                .filter_map(|i| by_index.get(i).copied())
                .collect();
            let queued: HashSet<usize> = queue.iter().map(|(i, _)| *i).collect();
            // Zero-overlap candidates never entered the ranking; they are
            // the least likely to align, so they form the final tier.
            queue
                .extend(candidates.iter().copied().filter(|(i, _)| !kept.contains(i) && !queued.contains(i)));
            // Large pools are dominated by near-duplicates (one solution
            // family, thousands of trivially varied members), which flatten
            // the ranking tail: the shortlist's family already failed to
            // align, so its duplicates will too. Examine one representative
            // of each signal shape first — a structurally different donor
            // is then reached after tens, not thousands, of candidates.
            let mut seen_shapes: HashSet<u64> =
                keep.iter().map(|&(i, _)| index.shape_fingerprint(i)).collect();
            let mut duplicates: Vec<(usize, &Cluster)> = Vec::new();
            let mut ordered: Vec<(usize, &Cluster)> = Vec::with_capacity(queue.len());
            for entry in queue {
                if seen_shapes.insert(index.shape_fingerprint(entry.0)) {
                    ordered.push(entry);
                } else {
                    duplicates.push(entry);
                }
            }
            ordered.extend(duplicates);
            let queue = ordered;
            let mut tier = config.candidate_top_k.max(1);
            let mut offset = 0;
            while best.is_none() && offset < queue.len() {
                let batch = &queue[offset..(offset + tier).min(queue.len())];
                examined += batch.len();
                best = run_candidates(batch, attempt, inputs, &cluster_config, config.parallel)
                    .into_iter()
                    .flatten()
                    .min_by_key(|r| (r.total_cost, r.cluster_index));
                offset += batch.len();
                tier *= 2;
            }
            if let Some(o) = outcome.as_mut() {
                o.fell_back = true;
            }
        }
    }
    if config.verify {
        if let Some(repair) = best.as_mut() {
            let _timer = crate::timing::StageTimer::start(crate::timing::Stage::Verify);
            let analyzed = AnalyzedProgram::from_program(repair.repaired.clone(), inputs, config.fuel);
            let rep = &clusters[repair.cluster_index].representative;
            repair.verified = Some(find_matching(rep, &analyzed).is_some());
        }
    }
    let failure = if best.is_none() { Some(RepairFailure::SolverBudgetExhausted) } else { None };
    RepairResult {
        best,
        failure,
        candidate_clusters: examined,
        retrieval: outcome,
        realigned: false,
        elapsed: start.elapsed(),
    }
}

/// Runs the per-cluster repair over `candidates`, on multiple threads when
/// `parallel` and the pool is big enough.
fn run_candidates(
    candidates: &[(usize, &Cluster)],
    attempt: &AnalyzedProgram,
    inputs: &[Vec<Value>],
    cluster_config: &RepairConfig,
    parallel: bool,
) -> Vec<Option<ClusterRepair>> {
    if parallel && candidates.len() > 1 {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let chunk_size = candidates.len().div_ceil(threads);
        let mut results: Vec<Option<ClusterRepair>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        // Stage timers record to a thread-local collector;
                        // capture this worker's spans so the parent can
                        // adopt them into the request's span tree.
                        crate::timing::collect(|| {
                            chunk
                                .iter()
                                .map(|(index, cluster)| {
                                    repair_against_cluster(cluster, *index, attempt, inputs, cluster_config)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                })
                .collect();
            for handle in handles {
                let (chunk_results, spans) = handle.join().expect("repair worker panicked");
                crate::timing::adopt(spans);
                results.extend(chunk_results);
            }
        });
        results
    } else {
        candidates
            .iter()
            .map(|(index, cluster)| repair_against_cluster(cluster, *index, attempt, inputs, cluster_config))
            .collect()
    }
}

/// Removes strictly dominated local repairs: two candidates for the same
/// `(ℓ, v₂)` slot with identical dependency sets are interchangeable in every
/// ILP constraint, so the strictly more expensive one can never occur in an
/// optimal solution. Equal-cost candidates are all kept (they are distinct
/// repairs the solver may legitimately pick among). Shrinks the ILP the
/// solver has to chew on without changing the optimum.
fn prune_dominated(
    candidates: &mut Vec<CandidateRepair>,
    candidates_by_slot: &mut HashMap<(usize, String), Vec<usize>>,
) {
    /// A candidate's interchangeability class: slot plus sorted dependencies.
    type DominanceKey = (usize, String, Vec<(String, MapTarget)>);
    // Dominance class → cheapest cost seen.
    let mut cheapest: HashMap<DominanceKey, i64> = HashMap::new();
    let mut keys: Vec<DominanceKey> = Vec::with_capacity(candidates.len());
    for candidate in candidates.iter() {
        let mut deps = candidate.dependencies.clone();
        deps.sort();
        let key = (candidate.loc.0, candidate.var.clone(), deps);
        let entry = cheapest.entry(key.clone()).or_insert(candidate.cost);
        if candidate.cost < *entry {
            *entry = candidate.cost;
        }
        keys.push(key);
    }
    let keep: Vec<bool> = candidates.iter().zip(&keys).map(|(c, key)| c.cost <= cheapest[key]).collect();
    if keep.iter().all(|&k| k) {
        return;
    }
    // Compact the candidate list and remap the slot index.
    let mut remap: Vec<Option<usize>> = vec![None; candidates.len()];
    let mut next = 0usize;
    for (i, &k) in keep.iter().enumerate() {
        if k {
            remap[i] = Some(next);
            next += 1;
        }
    }
    let mut i = 0usize;
    candidates.retain(|_| {
        let kept = keep[i];
        i += 1;
        kept
    });
    for ids in candidates_by_slot.values_mut() {
        ids.retain_mut(|id| match remap[*id] {
            Some(new_id) => {
                *id = new_id;
                true
            }
            None => false,
        });
    }
}

/// `true` when the attempt contains no expressions at all (an empty or
/// `pass`-only submission).
fn attempt_is_empty(program: &Program) -> bool {
    program.locs().all(|loc| program.updates_at(loc).is_empty())
}

/// The trivial rewrite used for completely empty attempts: replace the whole
/// submission with the representative of the largest cluster. Every
/// representative assignment counts as an added expression.
///
/// `added_vars` follows the same convention as the normal decode path:
/// `(representative variable, fresh implementation name)` pairs, restricted
/// to variables that are genuinely introduced (positionally shared
/// parameters are not additions), and the rewritten program actually uses
/// the fresh names.
fn trivial_rewrite_repair(clusters: &[Cluster], attempt: &AnalyzedProgram) -> Option<ClusterRepair> {
    let (cluster_index, cluster) = clusters.iter().enumerate().max_by_key(|(_, c)| c.size())?;
    let rep = &cluster.representative;
    let rep_params = &rep.program.params;
    let attempt_params = &attempt.program.params;
    let attempt_vars = &attempt.program.vars;

    // `taken` covers the attempt's variables, every representative variable
    // (a fresh name must not collide with a representative variable that is
    // itself being renamed) and the fresh names assigned so far.
    let mut taken: Vec<String> = attempt_vars.clone();
    taken.extend(rep.program.vars.iter().cloned());
    let added_vars: Vec<(String, String)> = rep
        .program
        .user_vars()
        .into_iter()
        .filter(|v| can_add(v, rep_params, attempt_params))
        .map(|v| {
            let fresh = fresh_name(&v, &taken);
            taken.push(fresh.clone());
            (v, fresh)
        })
        .collect();
    let rename: HashMap<String, String> =
        added_vars.iter().filter(|(v, fresh)| v != fresh).cloned().collect();

    // The repaired program is the representative with the added variables
    // renamed to their fresh implementation names (assignment slots moved and
    // every update expression rewritten).
    let mut repaired = rep.program.clone();
    if !rename.is_empty() {
        for loc in rep.program.locs() {
            for (var, expr) in rep.program.updates_at(loc) {
                let line = rep.program.update_line(loc, var).unwrap_or(0);
                let renamed_expr = expr.rename(&rename);
                if let Some(fresh) = rename.get(var) {
                    repaired.remove_update(loc, var);
                    repaired.set_update(loc, fresh, renamed_expr, line);
                } else {
                    repaired.set_update(loc, var, renamed_expr, line);
                }
            }
        }
        for (old, fresh) in &rename {
            repaired.remove_var(old);
            repaired.add_var(fresh);
        }
    }

    let mut actions = Vec::new();
    let mut total_cost = 0;
    for loc in repaired.locs() {
        for (var, expr) in repaired.updates_at(loc) {
            let cost = expr_tree_size(expr) as i64;
            total_cost += cost;
            actions.push(RepairAction::AddAssignment { loc, var: var.clone(), expr: expr.clone(), cost });
        }
    }
    Some(ClusterRepair {
        cluster_index,
        total_cost,
        actions,
        var_map: VarMap::new(),
        added_vars,
        deleted_vars: attempt
            .program
            .user_vars()
            .into_iter()
            .filter(|v| can_delete(v, attempt_params, rep_params))
            .collect(),
        repaired,
        verified: Some(true),
        is_rewrite: true,
    })
}

/// The target an expression variable is mapped to while enumerating partial
/// variable relations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum MapTarget {
    /// An existing variable of the other program.
    Existing(String),
    /// A fresh variable introduced for the given representative variable.
    Fresh(String),
}

/// Structural dedup key for candidate local repairs. (Previously these were
/// rendered `format!`/`expr_to_string` strings; hashing the structures
/// directly avoids the rendering allocations in the hottest loop.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SeenKey {
    /// `(ω, •)` candidate: representative variable plus the sorted ω pairs.
    Keep(String, Vec<(String, String)>),
    /// `(ω⁻¹, ω(e))` candidate: representative variable plus the translated
    /// replacement expression.
    Replace(String, Expr),
}

/// Variable-compatibility data hoisted out of the per-candidate work of
/// [`repair_against_cluster`]: the `vars_compatible` matrix and the
/// add/delete permissions depend only on the two variable sets, so they are
/// computed once per cluster (O(vars²)) instead of per (location, candidate,
/// ω-extension).
struct CompatInfo {
    rep_index: HashMap<String, usize>,
    impl_index: HashMap<String, usize>,
    rep_count: usize,
    /// `matrix[impl_idx * rep_count + rep_idx]`.
    matrix: Vec<bool>,
    /// Indexed by representative variable.
    addable: Vec<bool>,
    /// Indexed by implementation variable.
    deletable: Vec<bool>,
}

impl CompatInfo {
    fn new(rep: &Program, attempt: &Program) -> Self {
        let rep_count = rep.vars.len();
        let rep_index: HashMap<String, usize> =
            rep.vars.iter().enumerate().map(|(i, v)| (v.clone(), i)).collect();
        let impl_index: HashMap<String, usize> =
            attempt.vars.iter().enumerate().map(|(i, v)| (v.clone(), i)).collect();
        let mut matrix = vec![false; attempt.vars.len() * rep_count];
        for (i, impl_var) in attempt.vars.iter().enumerate() {
            for (r, rep_var) in rep.vars.iter().enumerate() {
                matrix[i * rep_count + r] = vars_compatible(impl_var, rep_var, &attempt.params, &rep.params);
            }
        }
        let addable = rep.vars.iter().map(|v| can_add(v, &rep.params, &attempt.params)).collect();
        let deletable = attempt.vars.iter().map(|v| can_delete(v, &attempt.params, &rep.params)).collect();
        CompatInfo { rep_index, impl_index, rep_count, matrix, addable, deletable }
    }

    fn compatible(&self, impl_var: &str, rep_var: &str) -> bool {
        match (self.impl_index.get(impl_var), self.rep_index.get(rep_var)) {
            (Some(&i), Some(&r)) => self.matrix[i * self.rep_count + r],
            _ => false,
        }
    }

    fn can_add(&self, rep_var: &str) -> bool {
        self.rep_index.get(rep_var).is_some_and(|&r| self.addable[r])
    }

    fn can_delete(&self, impl_var: &str) -> bool {
        self.impl_index.get(impl_var).is_some_and(|&i| self.deletable[i])
    }
}

/// A candidate local repair (an element of `LR(ℓ, v)` in Definition 5.4).
#[derive(Debug, Clone)]
struct CandidateRepair {
    loc: Loc,
    var: String,
    /// Pair dependencies: representative variable → implementation target.
    dependencies: Vec<(String, MapTarget)>,
    /// `None` keeps the implementation expression (`(ω, •)`).
    replacement: Option<Expr>,
    cost: i64,
}

/// `true` when the representative variable may be introduced as a fresh
/// implementation variable (special variables and positionally-pinned
/// parameters never are).
fn can_add(rep_var: &str, rep_params: &[String], impl_params: &[String]) -> bool {
    if pinned(rep_var) {
        return false;
    }
    match rep_params.iter().position(|p| p == rep_var) {
        Some(position) => position >= impl_params.len(),
        None => true,
    }
}

/// `true` when the implementation variable may be deleted (special variables
/// and positionally-pinned parameters never are).
fn can_delete(impl_var: &str, impl_params: &[String], rep_params: &[String]) -> bool {
    if pinned(impl_var) {
        return false;
    }
    match impl_params.iter().position(|p| p == impl_var) {
        Some(position) => position >= rep_params.len(),
        None => true,
    }
}

/// Derives the fresh implementation-variable name for an added
/// representative variable.
pub fn fresh_name(rep_var: &str, taken: &[String]) -> String {
    let base = format!("new_{}", rep_var.trim_start_matches('#'));
    if !taken.iter().any(|v| v == &base) {
        return base;
    }
    let mut i = 2;
    loop {
        let candidate = format!("{base}_{i}");
        if !taken.iter().any(|v| v == &candidate) {
            return candidate;
        }
        i += 1;
    }
}

/// Runs the repair algorithm of Fig. 5 against a single cluster.
pub fn repair_against_cluster(
    cluster: &Cluster,
    cluster_index: usize,
    attempt: &AnalyzedProgram,
    inputs: &[Vec<Value>],
    config: &RepairConfig,
) -> Option<ClusterRepair> {
    let rep = &cluster.representative;
    if !rep.program.same_control_flow(&attempt.program) {
        return None;
    }
    let rep_vars: Vec<String> = rep.program.vars.clone();
    let impl_vars: Vec<String> = attempt.program.vars.clone();
    let traces = &rep.traces;
    let compat = CompatInfo::new(&rep.program, &attempt.program);
    // One signature cache per cluster: every structurally distinct expression
    // is evaluated once per location, and each ω-enumeration query below
    // collapses to a table lookup plus a hash comparison.
    let mut sig_cache = if config.use_signature_cache { Some(SignatureCache::new(traces)) } else { None };
    // Fresh implementation names for representative variables introduced by
    // the ⋆ extension, assigned once (in `rep_vars` order, with `taken`
    // accumulating) so that candidate replacement expressions and the decoded
    // repair agree and two added variables never share a name (e.g. `#it1`
    // and `it1` both deriving `new_it1`).
    let fresh_names: HashMap<String, String> = {
        let mut taken: Vec<String> = impl_vars.clone();
        let mut map = HashMap::new();
        for v1 in &rep_vars {
            if compat.can_add(v1) {
                let fresh = fresh_name(v1, &taken);
                taken.push(fresh.clone());
                map.insert(v1.clone(), fresh);
            }
        }
        map
    };

    // ------------------------------------------------------------------
    // Step 1: generate the sets of possible local repairs LR(ℓ, v₂).
    // ------------------------------------------------------------------
    let mut candidates: Vec<CandidateRepair> = Vec::new();
    let mut candidates_by_slot: HashMap<(usize, String), Vec<usize>> = HashMap::new();

    for loc in attempt.program.locs() {
        for v2 in &impl_vars {
            let e_impl = attempt.program.update(loc, v2);
            let slot = (loc.0, v2.clone());
            let mut seen: HashSet<SeenKey> = HashSet::new();
            // Flattened once per slot; every replacement candidate's edit
            // distance compares against it.
            let mut impl_tree: Option<PreparedTree> = None;

            for v1 in &rep_vars {
                if !compat.compatible(v2, v1) {
                    continue;
                }
                let e_rep = rep.program.update(loc, v1);

                // (ω, •): the implementation expression already matches.
                let impl_sources: Vec<String> = {
                    let mut vars = e_impl.variables();
                    if !vars.contains(v2) {
                        vars.push(v2.clone());
                    }
                    vars
                };
                for_each_keep_relation(
                    &impl_sources,
                    v2,
                    v1,
                    &rep_vars,
                    &compat,
                    config.max_relations_per_expr,
                    &mut |omega| {
                        let matched = match sig_cache.as_mut() {
                            // ω(e_impl) is never materialised: e_impl is
                            // evaluated under a renaming view of each memory.
                            Some(cache) => cache.matches_under_renaming(&e_rep, &e_impl, omega, loc),
                            None => {
                                let translated =
                                    e_impl.substitute(&|name| omega.get(name).map(|t| Expr::Var(t.clone())));
                                exprs_match(&e_rep, &translated, traces, loc)
                            }
                        };
                        if matched {
                            let mut pairs: Vec<(String, String)> =
                                omega.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
                            pairs.sort();
                            if seen.insert(SeenKey::Keep(v1.clone(), pairs)) {
                                let dependencies = omega
                                    .iter()
                                    .map(|(impl_var, rep_var)| {
                                        (rep_var.clone(), MapTarget::Existing(impl_var.clone()))
                                    })
                                    .collect();
                                let index = candidates.len();
                                candidates.push(CandidateRepair {
                                    loc,
                                    var: v2.clone(),
                                    dependencies,
                                    replacement: None,
                                    cost: 0,
                                });
                                candidates_by_slot.entry(slot.clone()).or_default().push(index);
                            }
                        }
                    },
                );

                // (ω⁻¹, ω(e)): take a cluster expression and translate it to
                // implementation variables.
                for cluster_expr in cluster.expressions(loc, v1) {
                    let rep_sources: Vec<String> = {
                        let mut vars = cluster_expr.variables();
                        if !vars.contains(v1) {
                            vars.push(v1.clone());
                        }
                        vars
                    };
                    for_each_replace_relation(
                        &rep_sources,
                        v1,
                        v2,
                        &impl_vars,
                        &compat,
                        config.max_relations_per_expr,
                        &mut |omega| {
                            let replacement = cluster_expr.substitute(&|name| {
                                omega.get(name).map(|target| match target {
                                    MapTarget::Existing(impl_var) => Expr::Var(impl_var.clone()),
                                    MapTarget::Fresh(rep_var) => {
                                        Expr::Var(fresh_names[rep_var.as_str()].clone())
                                    }
                                })
                            });
                            if !seen.insert(SeenKey::Replace(v1.clone(), replacement.clone())) {
                                return;
                            }
                            let cost = if replacement == e_impl {
                                0
                            } else {
                                let impl_tree =
                                    impl_tree.get_or_insert_with(|| PreparedTree::from_expr(&e_impl));
                                prepared_edit_distance(impl_tree, &PreparedTree::from_expr(&replacement))
                                    as i64
                            };
                            let dependencies = omega
                                .iter()
                                .map(|(rep_var, target)| (rep_var.clone(), target.clone()))
                                .collect();
                            let index = candidates.len();
                            candidates.push(CandidateRepair {
                                loc,
                                var: v2.clone(),
                                dependencies,
                                replacement: Some(replacement),
                                cost,
                            });
                            candidates_by_slot.entry(slot.clone()).or_default().push(index);
                        },
                    );
                }
            }
        }
    }

    prune_dominated(&mut candidates, &mut candidates_by_slot);

    // ------------------------------------------------------------------
    // Step 2: encode constraints (1)–(4) of Definition 5.5 as a 0-1 ILP.
    // ------------------------------------------------------------------
    // The ILP stage covers encoding and solving; the guard drops right
    // after the solver returns (or on an early bail-out).
    let ilp_timer = crate::timing::StageTimer::start(crate::timing::Stage::Ilp);
    let mut ilp = IlpBuilder::new();
    let mut pair_vars: HashMap<(String, String), VarId> = HashMap::new(); // (rep, impl)
    let mut add_vars: HashMap<String, VarId> = HashMap::new(); // rep var → x_add
    let mut del_vars: HashMap<String, VarId> = HashMap::new(); // impl var → x_del

    for v1 in &rep_vars {
        for v2 in &impl_vars {
            if compat.compatible(v2, v1) {
                let id = ilp.add_var(format!("pair:{v1}={v2}"), 0);
                pair_vars.insert((v1.clone(), v2.clone()), id);
            }
        }
        if compat.can_add(v1) {
            let cost = add_cost(&rep.program, cluster, v1);
            add_vars.insert(v1.clone(), ilp.add_var(format!("add:{v1}"), cost));
        }
    }
    for v2 in &impl_vars {
        if compat.can_delete(v2) {
            let cost = delete_cost(&attempt.program, v2);
            del_vars.insert(v2.clone(), ilp.add_var(format!("del:{v2}"), cost));
        }
    }

    // Constraint (1): every representative variable is matched exactly once
    // (to an implementation variable or to a fresh one).
    for v1 in &rep_vars {
        let mut row: Vec<VarId> =
            impl_vars.iter().filter_map(|v2| pair_vars.get(&(v1.clone(), v2.clone())).copied()).collect();
        if let Some(add) = add_vars.get(v1) {
            row.push(*add);
        }
        ilp.add_exactly_one(&row);
    }
    // Constraint (2): every implementation variable is matched exactly once
    // (to a representative variable or deleted).
    for v2 in &impl_vars {
        let mut row: Vec<VarId> =
            rep_vars.iter().filter_map(|v1| pair_vars.get(&(v1.clone(), v2.clone())).copied()).collect();
        if let Some(del) = del_vars.get(v2) {
            row.push(*del);
        }
        ilp.add_exactly_one(&row);
    }

    // Local-repair selection variables.
    let repair_ids: Vec<VarId> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| ilp.add_var(format!("lr:{i}:{}@{}", c.var, c.loc), c.cost))
        .collect();

    // Constraint (3): exactly one local repair per (ℓ, v₂) — or the variable
    // is deleted.
    for loc in attempt.program.locs() {
        for v2 in &impl_vars {
            let slot = (loc.0, v2.clone());
            let mut row: Vec<VarId> = candidates_by_slot
                .get(&slot)
                .map(|ids| ids.iter().map(|&i| repair_ids[i]).collect())
                .unwrap_or_default();
            if let Some(del) = del_vars.get(v2) {
                row.push(*del);
            }
            if row.is_empty() {
                // A pinned special variable with no candidate local repair:
                // the cluster cannot repair this attempt.
                return None;
            }
            ilp.add_exactly_one(&row);
        }
    }

    // Constraint (4): a selected local repair forces its variable pairs.
    for (i, candidate) in candidates.iter().enumerate() {
        for (rep_var, target) in &candidate.dependencies {
            let pair_id = match target {
                MapTarget::Existing(impl_var) => pair_vars.get(&(rep_var.clone(), impl_var.clone())).copied(),
                MapTarget::Fresh(rep_var) => add_vars.get(rep_var).copied(),
            };
            match pair_id {
                Some(pair_id) => ilp.add_implication(repair_ids[i], pair_id),
                None => {
                    // The dependency can never be satisfied (e.g. a pinned
                    // variable paired with a different pinned variable);
                    // forbid the repair.
                    ilp.add_constraint(vec![(repair_ids[i], 1)], clara_ilp::Cmp::Eq, 0);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Step 3: solve and decode.
    // ------------------------------------------------------------------
    let solution = ilp.solve_with_limits(config.ilp_limits).ok()??;
    drop(ilp_timer);

    let mut var_map = VarMap::new();
    for ((v1, v2), id) in &pair_vars {
        if solution.value(*id) {
            var_map.insert(v2.clone(), v1.clone());
        }
    }
    // In `rep_vars` order (deterministic — `add_vars` is a hash map), using
    // the fresh names fixed before candidate generation.
    let added_vars: Vec<(String, String)> = rep_vars
        .iter()
        .filter(|v1| add_vars.get(*v1).is_some_and(|id| solution.value(*id)))
        .map(|v1| (v1.clone(), fresh_names[v1.as_str()].clone()))
        .collect();
    let deleted_vars: Vec<String> =
        del_vars.iter().filter(|(_, id)| solution.value(**id)).map(|(v2, _)| v2.clone()).collect();

    // Translation of representative variables back to implementation
    // variables (τ⁻¹ extended with the fresh names).
    let mut back_map: HashMap<String, String> = HashMap::new();
    for (v2, v1) in &var_map {
        back_map.insert(v1.clone(), v2.clone());
    }
    for (v1, fresh) in &added_vars {
        back_map.insert(v1.clone(), fresh.clone());
    }

    let mut actions: Vec<RepairAction> = Vec::new();
    let mut repaired = attempt.program.clone();

    // Selected local repairs.
    for (i, candidate) in candidates.iter().enumerate() {
        if !solution.value(repair_ids[i]) {
            continue;
        }
        if let Some(new_expr) = &candidate.replacement {
            let old = attempt.program.update(candidate.loc, &candidate.var);
            if *new_expr != old {
                repaired.set_update(
                    candidate.loc,
                    &candidate.var,
                    new_expr.clone(),
                    attempt.program.update_line(candidate.loc, &candidate.var).unwrap_or(0),
                );
                actions.push(RepairAction::Modify {
                    loc: candidate.loc,
                    var: candidate.var.clone(),
                    line: attempt.program.update_line(candidate.loc, &candidate.var),
                    old,
                    new: new_expr.clone(),
                    cost: candidate.cost,
                });
            }
        }
    }

    // Added variables: copy the representative's assignments, translated back
    // to implementation variables.
    for (v1, fresh) in &added_vars {
        repaired.add_var(fresh);
        for loc in rep.program.locs() {
            if let Some(rep_expr) = rep.program.explicit_update(loc, v1) {
                let translated =
                    rep_expr.substitute(&|name| back_map.get(name).map(|target| Expr::Var(target.clone())));
                let cost = expr_tree_size(&translated) as i64;
                repaired.set_update(
                    loc,
                    fresh,
                    translated.clone(),
                    rep.program.update_line(loc, v1).unwrap_or(0),
                );
                actions.push(RepairAction::AddAssignment { loc, var: fresh.clone(), expr: translated, cost });
            }
        }
    }

    // Deleted variables: drop their assignments.
    for v2 in &deleted_vars {
        for loc in attempt.program.locs() {
            if let Some(old) = attempt.program.explicit_update(loc, v2) {
                let cost = expr_tree_size(old) as i64;
                actions.push(RepairAction::DeleteAssignment { loc, var: v2.clone(), old: old.clone(), cost });
                repaired.remove_update(loc, v2);
            }
        }
        repaired.remove_var(v2);
    }

    actions.sort_by_key(|a| match a {
        RepairAction::Modify { loc, .. }
        | RepairAction::AddAssignment { loc, .. }
        | RepairAction::DeleteAssignment { loc, .. } => loc.0,
    });

    // Optional verification of Theorem 5.3.
    let verified = if config.verify {
        let analyzed = AnalyzedProgram::from_program(repaired.clone(), inputs, config.fuel);
        Some(find_matching(rep, &analyzed).is_some())
    } else {
        None
    };

    Some(ClusterRepair {
        cluster_index,
        total_cost: solution.objective,
        actions,
        var_map,
        added_vars,
        deleted_vars,
        repaired,
        verified,
        is_rewrite: false,
    })
}

/// Cost of introducing the representative variable `v1` into the
/// implementation: the representative's assignments have to be added.
fn add_cost(rep: &Program, _cluster: &Cluster, v1: &str) -> i64 {
    rep.locs().filter_map(|loc| rep.explicit_update(loc, v1)).map(|e| expr_tree_size(e) as i64).sum()
}

/// Cost of deleting the implementation variable `v2`: all its assignments are
/// removed.
fn delete_cost(attempt: &Program, v2: &str) -> i64 {
    attempt.locs().filter_map(|loc| attempt.explicit_update(loc, v2)).map(|e| expr_tree_size(e) as i64).sum()
}

/// Enumerates the injective partial relations ω mapping the implementation
/// variables `sources` (which include `v2`) to representative variables, with
/// `ω(v2) = v1` fixed, invoking `visit` for each relation. Used for
/// `(ω, •)` local repairs. Visitor style: the relation map is reused across
/// the whole enumeration instead of being cloned per result.
fn for_each_keep_relation(
    sources: &[String],
    v2: &str,
    v1: &str,
    rep_vars: &[String],
    compat: &CompatInfo,
    cap: usize,
    visit: &mut dyn FnMut(&HashMap<String, String>),
) {
    let others: Vec<&String> = sources.iter().filter(|s| s.as_str() != v2).collect();
    let mut current: HashMap<String, String> = HashMap::new();
    current.insert(v2.to_owned(), v1.to_owned());
    let mut used: HashSet<String> = HashSet::new();
    used.insert(v1.to_owned());
    let mut visited = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        index: usize,
        others: &[&String],
        rep_vars: &[String],
        compat: &CompatInfo,
        current: &mut HashMap<String, String>,
        used: &mut HashSet<String>,
        visited: &mut usize,
        cap: usize,
        visit: &mut dyn FnMut(&HashMap<String, String>),
    ) {
        if *visited >= cap {
            return;
        }
        if index == others.len() {
            *visited += 1;
            visit(current);
            return;
        }
        let source = others[index];
        for target in rep_vars {
            if used.contains(target) || !compat.compatible(source, target) {
                continue;
            }
            current.insert(source.to_string(), target.clone());
            used.insert(target.clone());
            recurse(index + 1, others, rep_vars, compat, current, used, visited, cap, visit);
            used.remove(target);
            current.remove(source.as_str());
        }
    }
    recurse(0, &others, rep_vars, compat, &mut current, &mut used, &mut visited, cap, visit);
}

/// Enumerates the injective partial relations ω mapping the representative
/// variables `sources` (which include `v1`) to implementation variables or
/// fresh variables, with `ω(v1) = v2` fixed. Used for `(ω⁻¹, ω(e))` local
/// repairs.
fn for_each_replace_relation(
    sources: &[String],
    v1: &str,
    v2: &str,
    impl_vars: &[String],
    compat: &CompatInfo,
    cap: usize,
    visit: &mut dyn FnMut(&HashMap<String, MapTarget>),
) {
    let others: Vec<&String> = sources.iter().filter(|s| s.as_str() != v1).collect();
    let mut current: HashMap<String, MapTarget> = HashMap::new();
    current.insert(v1.to_owned(), MapTarget::Existing(v2.to_owned()));
    let mut used: HashSet<String> = HashSet::new();
    used.insert(v2.to_owned());
    let mut visited = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        index: usize,
        others: &[&String],
        impl_vars: &[String],
        compat: &CompatInfo,
        current: &mut HashMap<String, MapTarget>,
        used: &mut HashSet<String>,
        visited: &mut usize,
        cap: usize,
        visit: &mut dyn FnMut(&HashMap<String, MapTarget>),
    ) {
        if *visited >= cap {
            return;
        }
        if index == others.len() {
            *visited += 1;
            visit(current);
            return;
        }
        let source = others[index];
        for target in impl_vars {
            if used.contains(target) || !compat.compatible(target, source) {
                continue;
            }
            current.insert(source.to_string(), MapTarget::Existing(target.clone()));
            used.insert(target.clone());
            recurse(index + 1, others, impl_vars, compat, current, used, visited, cap, visit);
            used.remove(target);
            current.remove(source.as_str());
        }
        // The representative variable may also map to a fresh implementation
        // variable (the ⋆ extension of §5).
        if compat.can_add(source) {
            current.insert(source.to_string(), MapTarget::Fresh(source.to_string()));
            recurse(index + 1, others, impl_vars, compat, current, used, visited, cap, visit);
            current.remove(source.as_str());
        }
    }
    recurse(0, &others, impl_vars, compat, &mut current, &mut used, &mut visited, cap, visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalyzedProgram;
    use crate::cluster::cluster_programs;
    use clara_model::special;

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    fn inputs() -> Vec<Vec<Value>> {
        vec![
            vec![poly(&[6.3, 7.6, 12.14])],
            vec![poly(&[3.0])],
            vec![poly(&[1.0, 2.0, 3.0, 4.0])],
            vec![poly(&[])],
        ]
    }

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

    fn analyze(src: &str) -> AnalyzedProgram {
        AnalyzedProgram::from_text(src, "computeDeriv", &inputs(), clara_model::Fuel::default()).unwrap()
    }

    fn derivatives_clusters() -> Vec<Cluster> {
        cluster_programs(vec![analyze(C1), analyze(C2)])
    }

    #[test]
    fn repairing_the_representative_costs_nothing() {
        let clusters = derivatives_clusters();
        let result = repair_attempt(&clusters, &analyze(C1), &inputs(), &RepairConfig::default());
        let repair = result.best.unwrap();
        assert_eq!(repair.total_cost, 0);
        assert!(repair.added_vars.is_empty());
        assert!(repair.deleted_vars.is_empty());
        assert_eq!(repair.verified, Some(true));
        assert!(!repair.is_rewrite);
    }

    #[test]
    fn repair_respects_parameter_pinning() {
        // The parameter must map to the representative's parameter, never be
        // deleted or replaced by a fresh variable.
        let clusters = derivatives_clusters();
        let attempt = analyze(
            "def computeDeriv(values):\n    out = []\n    for i in range(len(values)):\n        out.append(float(values[i]*i))\n    if out == []:\n        return [0.0]\n    return out\n",
        );
        let result = repair_attempt(&clusters, &attempt, &inputs(), &RepairConfig::default());
        let repair = result.best.unwrap();
        assert_eq!(repair.var_map.get("values").map(String::as_str), Some("poly"));
        assert!(!repair.deleted_vars.contains(&"values".to_owned()));
        assert!(repair.added_vars.iter().all(|(rep_var, _)| rep_var != "poly"));
        assert_eq!(repair.verified, Some(true));
    }

    #[test]
    fn special_variables_always_map_to_themselves() {
        let clusters = derivatives_clusters();
        let attempt = analyze(
            "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n",
        );
        let result = repair_attempt(&clusters, &attempt, &inputs(), &RepairConfig::default());
        let repair = result.best.unwrap();
        for name in [special::COND, special::RETURN, special::RET_FLAG, special::OUT] {
            assert_eq!(repair.var_map.get(name).map(String::as_str), Some(name));
        }
    }

    #[test]
    fn missing_guard_is_repaired_with_a_conditional_expression() {
        // Dropping the `i > 0` filter means index 0 is included; the minimal
        // repair has to reintroduce the distinction, either in the iterator
        // or in the appended expression.
        let clusters = derivatives_clusters();
        let attempt = analyze(
            "def computeDeriv(poly):\n    result = []\n    for e in range(len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
        );
        let result = repair_attempt(&clusters, &attempt, &inputs(), &RepairConfig::default());
        let repair = result.best.unwrap();
        assert_eq!(repair.verified, Some(true));
        assert!(repair.total_cost >= 1);
        assert!(repair.modified_expression_count() >= 1);
    }

    #[test]
    fn cheaper_cluster_wins_when_several_match() {
        // Two separate clusters (for-based and while-based); the attempt is a
        // broken while-based solution, so the while cluster must be chosen.
        let while_ok = "\
def computeDeriv(poly):
    result = []
    i = 1
    while i < len(poly):
        result.append(float(poly[i] * i))
        i = i + 1
    if result == []:
        return [0.0]
    return result
";
        let clusters = cluster_programs(vec![analyze(C1), analyze(while_ok)]);
        assert_eq!(clusters.len(), 2);
        let attempt = analyze(
            "def computeDeriv(poly):\n    result = []\n    i = 0\n    while i < len(poly):\n        result.append(float(poly[i] * i))\n        i = i + 1\n    if result == []:\n        return [0.0]\n    return result\n",
        );
        let result = repair_attempt(&clusters, &attempt, &inputs(), &RepairConfig::default());
        let repair = result.best.unwrap();
        // Both clusters share the loop skeleton (a for-loop and a while-loop
        // lower to the same structure), but the while-based cluster yields the
        // cheaper repair and must win.
        assert_eq!(result.candidate_clusters, 2);
        assert_eq!(repair.cluster_index, 1, "the while-based cluster gives the minimal repair");
        assert!(repair.total_cost <= 2, "cost was {}", repair.total_cost);
        assert_eq!(repair.verified, Some(true));
    }

    #[test]
    fn sequential_and_parallel_cluster_processing_agree() {
        let clusters = derivatives_clusters();
        let attempt = analyze(
            "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n",
        );
        let sequential = RepairConfig { parallel: false, ..RepairConfig::default() };
        let parallel = RepairConfig { parallel: true, ..RepairConfig::default() };
        let a = repair_attempt(&clusters, &attempt, &inputs(), &sequential).best.unwrap();
        let b = repair_attempt(&clusters, &attempt, &inputs(), &parallel).best.unwrap();
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.cluster_index, b.cluster_index);
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        assert_eq!(fresh_name("n", &["x".to_owned()]), "new_n");
        assert_eq!(fresh_name("#it1", &[]), "new_it1");
        assert_eq!(fresh_name("n", &["new_n".to_owned()]), "new_n_2");
    }

    #[test]
    fn cached_and_uncached_repair_agree() {
        // The signature cache is a pure optimisation: candidate sets, ILP and
        // decoded repairs must be identical with and without it.
        let clusters = derivatives_clusters();
        for attempt_src in [
            C1,
            "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n",
            "def computeDeriv(poly):\n    result = []\n    for e in range(len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
        ] {
            let attempt = analyze(attempt_src);
            let cached = RepairConfig { use_signature_cache: true, ..RepairConfig::default() };
            let uncached = RepairConfig { use_signature_cache: false, ..RepairConfig::default() };
            let a = repair_attempt(&clusters, &attempt, &inputs(), &cached).best.unwrap();
            let b = repair_attempt(&clusters, &attempt, &inputs(), &uncached).best.unwrap();
            assert_eq!(a.total_cost, b.total_cost);
            assert_eq!(a.cluster_index, b.cluster_index);
            assert_eq!(a.actions.len(), b.actions.len());
            assert_eq!(a.var_map, b.var_map);
            assert_eq!(a.verified, b.verified);
        }
    }

    #[test]
    fn trivial_rewrite_reports_fresh_added_vars() {
        // The rewrite path must report `added_vars` as representative →
        // fresh-name pairs, exclude positionally shared parameters, and the
        // rewritten program must actually use the fresh names.
        let clusters = derivatives_clusters();
        let attempt = analyze("def computeDeriv(poly):\n    pass\n");
        let result = repair_attempt(&clusters, &attempt, &inputs(), &RepairConfig::default());
        let repair = result.best.unwrap();
        assert!(repair.is_rewrite);
        // The shared parameter is never an addition.
        assert!(repair.added_vars.iter().all(|(rep_var, _)| rep_var != "poly"));
        assert!(!repair.added_vars.is_empty());
        for (rep_var, fresh) in &repair.added_vars {
            assert_ne!(rep_var, fresh, "fresh names follow the decode-path convention");
            assert!(fresh.starts_with("new_"), "got fresh name {fresh}");
            assert!(
                repair.repaired.vars.iter().any(|v| v == fresh),
                "repaired program must define the fresh variable {fresh}"
            );
            assert!(
                !repair.repaired.vars.iter().any(|v| v == rep_var),
                "repaired program must not keep the original name {rep_var}"
            );
        }
        // Every added assignment refers to a variable of the repaired
        // program (i.e. uses fresh names, not representative names).
        for action in &repair.actions {
            if let RepairAction::AddAssignment { var, expr, .. } = action {
                assert!(repair.repaired.vars.iter().any(|v| v == var));
                for used in expr.variables() {
                    assert!(
                        repair.repaired.vars.iter().any(|v| v == &used),
                        "expression variable {used} missing from repaired program"
                    );
                }
            }
        }
    }

    #[test]
    fn relative_size_handles_empty_programs() {
        let clusters = derivatives_clusters();
        let attempt = analyze("def computeDeriv(poly):\n    pass\n");
        let result = repair_attempt(&clusters, &attempt, &inputs(), &RepairConfig::default());
        let repair = result.best.unwrap();
        assert!(repair.is_rewrite);
        assert!(repair.relative_size(0).is_infinite());
        assert!(repair.relative_size(100) > 0.0);
    }

    #[test]
    fn no_matching_control_flow_is_reported() {
        let clusters = derivatives_clusters();
        let attempt = analyze(
            "def computeDeriv(poly):\n    result = []\n    for i in range(len(poly)):\n        for j in range(i):\n            result.append(float(poly[i]))\n    return result\n",
        );
        let result = repair_attempt(&clusters, &attempt, &inputs(), &RepairConfig::default());
        assert!(result.best.is_none());
        assert_eq!(result.failure, Some(RepairFailure::NoMatchingControlFlow));
        assert_eq!(result.candidate_clusters, 0);
    }
}
