//! The differential repair oracle: soundness checking for claimed repairs.
//!
//! Theorem 5.3 of the paper guarantees that a decoded repair is dynamically
//! equivalent to the cluster representative — which is *correct* — so any
//! repair the pipeline claims must make the assignment's specification pass.
//! This module turns that guarantee into an executable check: run the full
//! cluster → match → repair pipeline on an incorrect attempt, then execute
//! the repaired model program on every test of the specification and demand
//! it passes. A claimed repair that fails a test is a **soundness
//! violation** — a bug in matching, the ILP encoding or the decoder, never
//! an acceptable answer — and the `mutation_quality` harness fails CI on
//! any occurrence.
//!
//! The oracle is *differential*: it is pointed at generated buggy variants
//! (the surface-IR mutation engine of `clara-corpus`) whose ground truth is
//! known by construction, so repair rate and patch size can be reported per
//! mutation operator without any manual labelling.

use clara_lang::ProblemSpec;
use clara_model::frontend::{grading_fuel, model_passes, Lang};

use crate::analysis::AnalyzedProgram;
use crate::frontends::frontend;
use crate::repair::RepairFailure;
use crate::{Clara, ClaraConfig};

/// The verdict of the oracle on one attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleVerdict {
    /// The attempt cannot be analysed (parse error or unsupported
    /// construct) — no claim was made, so nothing to check.
    Unsupported,
    /// The pipeline produced no repair.
    NotRepaired {
        /// Why, when the pipeline reported a reason.
        failure: Option<RepairFailure>,
    },
    /// The pipeline claimed a repair; `sound` records whether the repaired
    /// program actually passes the specification.
    Repaired(RepairCheck),
}

/// The checked properties of one claimed repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairCheck {
    /// Whether the repaired model program passes every test of the
    /// specification (the Theorem 5.3 obligation). `false` is a soundness
    /// violation.
    pub sound: bool,
    /// Total repair cost (tree edit distance).
    pub cost: i64,
    /// Cost relative to the attempt's AST size (`f64::INFINITY` for empty
    /// attempts).
    pub relative_size: f64,
    /// Number of modified expressions.
    pub modified_expressions: usize,
    /// Whether the repair is the whole-program rewrite fallback.
    pub is_rewrite: bool,
    /// Whether the repair was found through the flexible-alignment fallback
    /// (the attempt's control flow matched no cluster until normalization;
    /// see [`crate::align`]).
    pub realigned: bool,
}

impl OracleVerdict {
    /// `true` when the verdict is a claimed repair that fails the spec.
    pub fn is_soundness_violation(&self) -> bool {
        matches!(self, OracleVerdict::Repaired(check) if !check.sound)
    }
}

/// A reference pool plus specification, ready to judge attempts.
pub struct DifferentialOracle {
    clara: Clara,
    spec: ProblemSpec,
}

impl DifferentialOracle {
    /// Builds the oracle for an assignment: ingest `correct_sources` into a
    /// fresh engine for `lang` (clustering them like production traffic) and
    /// keep `spec` for the soundness obligation. Returns the oracle plus the
    /// number of reference solutions that were actually usable.
    pub fn new<'a>(
        lang: Lang,
        spec: ProblemSpec,
        correct_sources: impl IntoIterator<Item = &'a str>,
        config: ClaraConfig,
    ) -> (Self, usize) {
        let mut clara = Clara::new_in(lang, spec.entry.clone(), spec.inputs(), config);
        let mut usable = 0usize;
        for source in correct_sources {
            if clara.add_correct_solution(source).is_ok() {
                usable += 1;
            }
        }
        (DifferentialOracle { clara, spec }, usable)
    }

    /// The engine the oracle judges with (e.g. to inspect clusters).
    pub fn engine(&self) -> &Clara {
        &self.clara
    }

    /// Runs the full pipeline on `source` and checks any claimed repair
    /// against the specification. The source is parsed exactly once; the
    /// same parse serves analysis and the relative-patch-size denominator.
    pub fn check(&self, source: &str) -> OracleVerdict {
        let Ok(parsed) = frontend(self.clara.lang()).parse(source) else {
            return OracleVerdict::Unsupported;
        };
        let Ok(program) = parsed.lower(&self.spec.entry) else {
            return OracleVerdict::Unsupported;
        };
        let attempt = AnalyzedProgram::from_program(program, self.clara.inputs(), self.clara.fuel());
        // The same parse also feeds the structural half of candidate
        // retrieval, so the oracle exercises the exact production path.
        let surface = parsed.surface(&self.spec.entry).ok();
        let outcome = self.clara.repair_with_surface(&attempt, surface.as_ref());
        let realigned = outcome.result.realigned;
        match outcome.result.best {
            None => OracleVerdict::NotRepaired { failure: outcome.result.failure },
            Some(repair) => {
                // Theorem 5.3 made executable: the repaired model program
                // must pass the specification it was repaired against.
                let sound =
                    model_passes(&repair.repaired, &self.spec) || model_passes_with_fuel(&repair, &self.spec);
                OracleVerdict::Repaired(RepairCheck {
                    sound,
                    cost: repair.total_cost,
                    relative_size: repair.relative_size(parsed.ast_size()),
                    modified_expressions: repair.modified_expression_count(),
                    is_rewrite: repair.is_rewrite,
                    realigned,
                })
            }
        }
    }
}

/// Second soundness attempt under the spec's own (usually larger) grading
/// step budget — a repair must not be flagged unsound just because the
/// default model fuel is tighter than the grader's.
fn model_passes_with_fuel(repair: &crate::repair::ClusterRepair, spec: &ProblemSpec) -> bool {
    let fuel = grading_fuel(spec);
    spec.tests.iter().all(|test| clara_model::frontend::model_passes_test(&repair.repaired, test, fuel))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENTRY: &str = "f";

    fn spec() -> ProblemSpec {
        use clara_lang::{TestCase, Value};
        ProblemSpec::new(
            "double_or_zero",
            ENTRY,
            vec![
                TestCase::returning(vec![Value::Int(0)], Value::Int(0)),
                TestCase::returning(vec![Value::Int(3)], Value::Int(6)),
                TestCase::returning(vec![Value::Int(-2)], Value::Int(0)),
            ],
        )
    }

    fn oracle() -> DifferentialOracle {
        let correct = [
            "def f(x):\n    if x > 0:\n        return x * 2\n    return 0\n",
            "def f(y):\n    if y <= 0:\n        return 0\n    return y + y\n",
        ];
        let (oracle, usable) = DifferentialOracle::new(Lang::MiniPy, spec(), correct, ClaraConfig::default());
        assert_eq!(usable, 2);
        oracle
    }

    #[test]
    fn claimed_repairs_are_sound() {
        let oracle = oracle();
        for buggy in [
            "def f(x):\n    if x > 0:\n        return x * 3\n    return 0\n",
            "def f(x):\n    if x < 0:\n        return x * 2\n    return 0\n",
            "def f(x):\n    if x > 0:\n        return x * 2\n    return 1\n",
        ] {
            match oracle.check(buggy) {
                OracleVerdict::Repaired(check) => {
                    assert!(check.sound, "unsound repair for:\n{buggy}");
                    assert!(check.cost > 0);
                    assert!(check.relative_size > 0.0);
                }
                other => panic!("expected a repair for:\n{buggy}\ngot {other:?}"),
            }
        }
    }

    #[test]
    fn unsupported_and_unrepairable_attempts_are_classified() {
        let oracle = oracle();
        assert_eq!(oracle.check("def f(:\n"), OracleVerdict::Unsupported);
        // Control flow (a loop) no reference shares: not repaired, not a
        // violation.
        let loopy =
            "def f(x):\n    t = 0\n    while x > 0:\n        t = t + 2\n        x = x - 1\n    return t\n";
        match oracle.check(loopy) {
            OracleVerdict::NotRepaired { failure } => {
                assert_eq!(failure, Some(RepairFailure::NoMatchingControlFlow));
            }
            OracleVerdict::Repaired(check) => {
                // If a future matcher learns to bridge this, it must do so
                // soundly.
                assert!(check.sound);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn correct_attempts_come_back_as_zero_cost_sound_repairs() {
        let oracle = oracle();
        match oracle.check("def f(a):\n    if a > 0:\n        return a * 2\n    return 0\n") {
            OracleVerdict::Repaired(check) => {
                assert!(check.sound);
                assert_eq!(check.cost, 0);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn minic_attempts_are_judged_through_the_c_frontend() {
        use clara_lang::{TestCase, Value};
        let spec = ProblemSpec::new(
            "fib_c",
            "fib",
            vec![
                TestCase::printing(vec![Value::Int(1)], "2\n"),
                TestCase::printing(vec![Value::Int(8)], "6\n"),
                TestCase::printing(vec![Value::Int(20)], "7\n"),
            ],
        );
        let correct = [
            "int fib(int k) {\n    int a = 1;\n    int b = 1;\n    int n = 1;\n    while (b <= k) {\n        int c = a + b;\n        a = b;\n        b = c;\n        n = n + 1;\n    }\n    printf(\"%d\\n\", n);\n    return 0;\n}\n",
            "int fib(int k) {\n    int prev = 1;\n    int cur = 1;\n    int count = 1;\n    while (cur <= k) {\n        int temp = cur;\n        cur = cur + prev;\n        prev = temp;\n        count = count + 1;\n    }\n    printf(\"%d\\n\", count);\n    return 0;\n}\n",
        ];
        let (oracle, usable) = DifferentialOracle::new(Lang::MiniC, spec, correct, ClaraConfig::default());
        assert_eq!(usable, 2);
        let buggy = "int fib(int k) {\n    int a = 1;\n    int b = 1;\n    int n = 1;\n    while (b < k) {\n        int c = a + b;\n        a = b;\n        b = c;\n        n = n + 1;\n    }\n    printf(\"%d\\n\", n);\n    return 0;\n}\n";
        match oracle.check(buggy) {
            OracleVerdict::Repaired(check) => {
                assert!(check.sound, "C repair must satisfy the spec");
                assert!(check.cost > 0);
            }
            other => panic!("expected a repair, got {other:?}"),
        }
    }
}
