//! Program and expression matching (§4 of the paper).
//!
//! Two programs *match* over a set of inputs when they have the same
//! control-flow and there is a total bijective variable relation under which
//! they produce identical traces (Definition 4.4). The matching witness is
//! found exactly as in Fig. 4: candidate variable pairs are those whose value
//! projections agree on every input, and a bijection inside the candidate
//! relation is extracted with maximum bipartite matching.

use std::collections::HashMap;

use clara_lang::{eval_expr, Expr, Value};
use clara_model::{special, Loc, Trace};

use crate::analysis::AnalyzedProgram;

/// A total variable relation `τ : V_Q → V_P` (maps variables of the second
/// program to variables of the first).
pub type VarMap = HashMap<String, String>;

/// Returns `true` if the two special variables are required to map to each
/// other (special variables are pinned: `?` to `?`, `return` to `return`,
/// `#ret` to `#ret`, `#out` to `#out`).
pub(crate) fn compatible_names(q_var: &str, p_var: &str) -> bool {
    let q_pinned = pinned(q_var);
    let p_pinned = pinned(p_var);
    match (q_pinned, p_pinned) {
        (true, true) => q_var == p_var,
        (false, false) => true,
        _ => false,
    }
}

/// Variables that must map to themselves. Generated iterator (`#it<n>`) and
/// break (`#brk<n>`) variables are *not* pinned: a `while`-based solution may
/// legitimately match a `for`-based one only if some of its variables carry
/// the iterator values, and the bipartite matching figures that out.
pub(crate) fn pinned(var: &str) -> bool {
    matches!(var, special::COND | special::RETURN | special::RET_FLAG | special::OUT)
}

/// Full compatibility check between a variable of `Q` and a variable of `P`:
/// special variables map to themselves, and parameters correspond
/// *positionally* (the grading harness passes arguments by position, so the
/// k-th parameter of one program can only play the role of the k-th parameter
/// of the other).
pub(crate) fn vars_compatible(q_var: &str, p_var: &str, q_params: &[String], p_params: &[String]) -> bool {
    if !compatible_names(q_var, p_var) {
        return false;
    }
    let q_pos = q_params.iter().position(|x| x == q_var);
    let p_pos = p_params.iter().position(|x| x == p_var);
    match (q_pos, p_pos) {
        (Some(a), Some(b)) => a == b,
        (None, None) => true,
        _ => false,
    }
}

/// Finds the matching witness `τ : V_Q → V_P` of Definition 4.4, if the two
/// programs match on the analysed inputs (the algorithm of Fig. 4).
///
/// Matching requires exact control-flow correspondence (same structural
/// signature, same location sequence) — the fundamental limitation of
/// §6.2 (1). Attempts rejected here for structure mismatch get a second
/// chance through the flexible-alignment fallback ([`crate::align`]), which
/// normalizes the attempt's surface control flow (trace-agreement-gated)
/// and re-enters this strict matcher; the matcher itself is deliberately
/// never relaxed.
pub fn find_matching(p: &AnalyzedProgram, q: &AnalyzedProgram) -> Option<VarMap> {
    let _timer = crate::timing::StageTimer::start(crate::timing::Stage::ClusterMatch);
    if !p.program.same_control_flow(&q.program) {
        return None;
    }
    if p.location_sequence() != q.location_sequence() {
        return None;
    }
    if p.program.vars.len() != q.program.vars.len() {
        return None;
    }

    // Candidate edges M ⊆ V_Q × V_P (Fig. 4, lines 5-10). Projections are
    // precomputed on the `AnalyzedProgram`s; the cached hashes (consistent
    // with `py_eq`) reject almost all unequal pairs before the value-by-value
    // comparison runs.
    let q_vars: Vec<&str> = q.program.vars.iter().map(String::as_str).collect();
    let p_vars: Vec<&str> = p.program.vars.iter().map(String::as_str).collect();
    let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); q_vars.len()];
    for (qi, q_var) in q_vars.iter().enumerate() {
        for (pi, p_var) in p_vars.iter().enumerate() {
            if vars_compatible(q_var, p_var, &q.program.params, &p.program.params)
                && q.projection_hash(q_var) == p.projection_hash(p_var)
                && q.projection(q_var) == p.projection(p_var)
            {
                candidates[qi].push(pi);
            }
        }
    }

    // Maximum bipartite matching (Fig. 4, line 11): every variable of Q must
    // be matched to a distinct variable of P.
    let matching = perfect_matching(&candidates, p_vars.len())?;
    let map = matching
        .into_iter()
        .enumerate()
        .map(|(qi, pi)| (q_vars[qi].to_owned(), p_vars[pi].to_owned()))
        .collect();
    Some(map)
}

/// Kuhn's augmenting-path algorithm for bipartite matching. Returns, for each
/// left vertex, its matched right vertex — or `None` if no perfect matching
/// exists.
fn perfect_matching(candidates: &[Vec<usize>], right_size: usize) -> Option<Vec<usize>> {
    let mut match_right: Vec<Option<usize>> = vec![None; right_size];

    fn try_augment(
        left: usize,
        candidates: &[Vec<usize>],
        visited: &mut [bool],
        match_right: &mut [Option<usize>],
    ) -> bool {
        for &right in &candidates[left] {
            if visited[right] {
                continue;
            }
            visited[right] = true;
            if match_right[right].is_none()
                || try_augment(match_right[right].expect("checked above"), candidates, visited, match_right)
            {
                match_right[right] = Some(left);
                return true;
            }
        }
        false
    }

    for left in 0..candidates.len() {
        let mut visited = vec![false; right_size];
        if !try_augment(left, candidates, &mut visited, &mut match_right) {
            return None;
        }
    }

    let mut result = vec![usize::MAX; candidates.len()];
    for (right, left) in match_right.iter().enumerate() {
        if let Some(left) = left {
            result[*left] = right;
        }
    }
    if result.contains(&usize::MAX) {
        return None;
    }
    Some(result)
}

/// Expression matching `e1 ≃_{Γ,ℓ} e2` (Definition 4.5): the two expressions
/// evaluate to the same value on every memory occurring at location `ℓ` in
/// the traces `Γ`. Evaluation errors yield the undefined value `⊥`, which is
/// only equal to itself.
///
/// Structurally identical expressions match unconditionally. (This also
/// keeps matching reflexive when an expression evaluates to `NaN`, whose
/// `py_eq` is not — and keeps this function exactly equivalent to the
/// cached [`crate::sigcache::SignatureCache`] paths, which use the same
/// fast path.)
pub fn exprs_match(e1: &Expr, e2: &Expr, traces: &[Trace], loc: Loc) -> bool {
    if e1 == e2 {
        return true;
    }
    for trace in traces {
        for memory in trace.memories_at(loc) {
            let v1 = eval_expr(e1, memory).unwrap_or(Value::Undef);
            let v2 = eval_expr(e2, memory).unwrap_or(Value::Undef);
            if !v1.py_eq(&v2) {
                return false;
            }
        }
    }
    true
}

/// Applies a variable relation to an expression (Definition 4.3).
pub fn apply_var_map(expr: &Expr, map: &VarMap) -> Expr {
    expr.substitute(&|name| map.get(name).map(|target| Expr::Var(target.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::parse_expression;
    use clara_model::Fuel;

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    fn inputs() -> Vec<Vec<Value>> {
        vec![
            vec![poly(&[6.3, 7.6, 12.14])],
            vec![poly(&[3.0])],
            vec![poly(&[1.0, 2.0, 3.0, 4.0])],
            vec![poly(&[])],
        ]
    }

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

    fn analyze(src: &str) -> AnalyzedProgram {
        AnalyzedProgram::from_text(src, "computeDeriv", &inputs(), Fuel::default()).unwrap()
    }

    #[test]
    fn the_papers_c1_c2_matching() {
        let p = analyze(C1);
        let q = analyze(C2);
        let tau = find_matching(&p, &q).expect("C1 and C2 match (§2.1 of the paper)");
        assert_eq!(tau.get("deriv").map(String::as_str), Some("result"));
        assert_eq!(tau.get("i").map(String::as_str), Some("e"));
        assert_eq!(tau.get("poly").map(String::as_str), Some("poly"));
        assert_eq!(tau.get("return").map(String::as_str), Some("return"));
        assert_eq!(tau.get("?").map(String::as_str), Some("?"));
    }

    #[test]
    fn matching_is_reflexive_and_symmetric() {
        let p = analyze(C1);
        let q = analyze(C2);
        assert!(find_matching(&p, &p).is_some());
        assert!(find_matching(&q, &p).is_some());
    }

    #[test]
    fn behaviourally_different_programs_do_not_match() {
        let wrong = "\
def computeDeriv(poly):
    result = []
    for e in range(len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";
        let p = analyze(C1);
        let q = analyze(wrong);
        assert!(find_matching(&p, &q).is_none());
    }

    #[test]
    fn different_control_flow_does_not_match() {
        let while_version = "\
def computeDeriv(poly):
    result = []
    i = 1
    while i < len(poly):
        result.append(float(poly[i]*i))
        i = i + 1
    if result == []:
        return [0.0]
    return result
";
        // The while version has an extra user variable carrying the index and
        // no iterator variable; its variable count differs, so C1 and the
        // while version end up in different clusters.
        let p = analyze(C1);
        let q = analyze(while_version);
        assert!(find_matching(&p, &q).is_none());
    }

    #[test]
    fn expression_matching_on_the_papers_examples() {
        let p = analyze(C1);
        let traces = &p.traces;
        // At the loop body location (ℓ2), the two syntactically different
        // expressions for `result` are dynamically equivalent.
        let a = parse_expression("append(result, float(poly[e]*e))").unwrap();
        let b = parse_expression("result + [float(e)*poly[e]]").unwrap();
        assert!(exprs_match(&a, &b, traces, Loc(2)));
        let c = parse_expression("result + [poly[e]*e]").unwrap();
        // Without the float() conversion the values differ only when the
        // coefficients are integers — and they are floats here, so it still
        // matches dynamically; use an expression that clearly differs.
        let d = parse_expression("result + [poly[e]]").unwrap();
        assert!(exprs_match(&a, &c, traces, Loc(2)));
        assert!(!exprs_match(&a, &d, traces, Loc(2)));
    }

    #[test]
    fn expression_matching_at_the_return_location() {
        let p = analyze(C1);
        let a = parse_expression("ite(result == [], [0.0], result)").unwrap();
        let b = parse_expression("ite(len(result) == 0, [0.0], result)").unwrap();
        let c = parse_expression("result or [0.0]").unwrap();
        let d = parse_expression("result").unwrap();
        assert!(exprs_match(&a, &b, &p.traces, Loc(3)));
        assert!(exprs_match(&a, &c, &p.traces, Loc(3)));
        // `result` alone differs on the constant-polynomial input.
        assert!(!exprs_match(&a, &d, &p.traces, Loc(3)));
    }

    #[test]
    fn apply_var_map_translates_expressions() {
        let mut map = VarMap::new();
        map.insert("deriv".to_owned(), "result".to_owned());
        map.insert("i".to_owned(), "e".to_owned());
        let expr = parse_expression("deriv + [float(i)*poly[i]]").unwrap();
        let translated = apply_var_map(&expr, &map);
        assert_eq!(clara_lang::expr_to_string(&translated), "result + [float(e) * poly[e]]");
    }

    #[test]
    fn perfect_matching_requires_all_vertices() {
        // Left 0 can go to {0,1}, left 1 only to {0}: perfect matching exists.
        assert!(perfect_matching(&[vec![0, 1], vec![0]], 2).is_some());
        // Both left vertices compete for the single right vertex: impossible.
        assert!(perfect_matching(&[vec![0], vec![0]], 2).is_none());
    }
}
