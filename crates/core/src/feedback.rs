//! Feedback generation (§6.1, item 5).
//!
//! Clara turns the minimal repair into textual feedback that names the source
//! location and describes the required modification, in the style of
//! Fig. 2(g)/(h) and Figs. 8–10 of the paper. For very large repairs
//! (cost above a threshold, §6.3 "Note") a generic strategy message is
//! produced instead, because spelling out a near-total rewrite is not useful
//! to a student.

use clara_model::frontend::Lang;
use clara_model::{special, LocKind, Program};

use crate::frontends::frontend;
use crate::repair::{ClusterRepair, RepairAction};

/// Configuration of feedback rendering.
#[derive(Debug, Clone)]
pub struct FeedbackOptions {
    /// Repairs with a total cost above this threshold produce a generic
    /// strategy message instead of a detailed edit list (the paper uses 100).
    pub large_repair_threshold: i64,
    /// Show the replacement expressions (`true`), or only the locations that
    /// must change (`false`) — one of the pedagogical choices discussed in §8.
    pub show_expressions: bool,
    /// The source language expressions are rendered in: C students see C
    /// expressions, Python students Python expressions.
    pub lang: Lang,
}

impl Default for FeedbackOptions {
    fn default() -> Self {
        FeedbackOptions { large_repair_threshold: 100, show_expressions: true, lang: Lang::MiniPy }
    }
}

/// The feedback shown to a student for one attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Feedback {
    /// A list of concrete, located edit suggestions.
    Suggestions(Vec<String>),
    /// The attempt is too far from any correct solution; a generic strategy
    /// hint is shown instead.
    GenericStrategy(String),
    /// The attempt already matches a correct solution (no repair needed).
    Correct,
}

impl Feedback {
    /// The individual feedback lines (empty for `Correct`).
    pub fn lines(&self) -> Vec<String> {
        match self {
            Feedback::Suggestions(lines) => lines.clone(),
            Feedback::GenericStrategy(text) => vec![text.clone()],
            Feedback::Correct => Vec::new(),
        }
    }

    /// `true` if the feedback consists of concrete repair suggestions.
    pub fn is_repair_feedback(&self) -> bool {
        matches!(self, Feedback::Suggestions(_))
    }
}

/// Renders the feedback for a repair, following the paper's textual style.
pub fn render_feedback(repair: &ClusterRepair, original: &Program, options: &FeedbackOptions) -> Feedback {
    if repair.actions.iter().all(|a| a.cost() == 0) {
        return Feedback::Correct;
    }
    if repair.is_rewrite || repair.total_cost > options.large_repair_threshold {
        return Feedback::GenericStrategy(generic_strategy(original));
    }
    let mut lines = Vec::new();
    for action in &repair.actions {
        match action {
            RepairAction::Modify { loc, var, line, old, new, cost } => {
                if *cost == 0 {
                    continue;
                }
                let place = describe_slot(original, *loc, var, *line);
                if options.show_expressions {
                    lines.push(format!(
                        "In {place}, change {} to {}.",
                        render_expr_for_user(old, options.lang),
                        render_expr_for_user(new, options.lang)
                    ));
                } else {
                    lines.push(format!("In {place}, the expression is not correct."));
                }
            }
            RepairAction::AddAssignment { loc, var, expr, .. } => {
                let info = original.loc_info(*loc);
                let place = match info.kind {
                    LocKind::LoopCond => format!("the loop starting at line {}", info.line),
                    _ => format!("line {}", info.line),
                };
                if options.show_expressions {
                    lines.push(format!(
                        "Add a new variable with the assignment {var} = {} near {place}.",
                        render_expr_for_user(expr, options.lang)
                    ));
                } else {
                    lines.push(format!("Add a new variable near {place}."));
                }
            }
            RepairAction::DeleteAssignment { loc, var, .. } => {
                let info = original.loc_info(*loc);
                lines.push(format!(
                    "Delete the assignment to {var} near line {} (the variable is not needed).",
                    original.update_line(*loc, var).unwrap_or(info.line)
                ));
            }
        }
    }
    if lines.is_empty() {
        Feedback::Correct
    } else {
        Feedback::Suggestions(lines)
    }
}

/// Describes where a modification has to happen, in the wording used by the
/// paper's examples ("In the iterator expression at line 3, ...").
fn describe_slot(program: &Program, loc: clara_model::Loc, var: &str, line: Option<u32>) -> String {
    let info = program.loc_info(loc);
    let line = line.unwrap_or(info.line);
    if var == special::COND {
        return match info.kind {
            LocKind::LoopCond => format!("the loop condition at line {line}"),
            _ => format!("the branch condition at line {line}"),
        };
    }
    if var == special::RETURN {
        return format!("the return statement at line {line}");
    }
    if var == special::OUT {
        return format!("the printed output at line {line}");
    }
    if var.starts_with("#it") {
        return format!("the iterator expression at line {line}");
    }
    if var.starts_with('#') {
        return format!("the control flow at line {line}");
    }
    format!("the assignment to {var} at line {line}")
}

/// Presents a model expression to the student in their source language's
/// syntax. Iterator-variable plumbing is rendered as-is; this is a simple
/// textual feedback system (the paper notes richer feedback is future work,
/// §8).
fn render_expr_for_user(expr: &clara_lang::Expr, lang: Lang) -> String {
    format!("`{}`", frontend(lang).render_expr(expr))
}

/// The generic strategy message used when a repair is too large to be useful
/// (§6.3 "Note": 403 of the user-study attempts received such feedback).
pub fn generic_strategy(original: &Program) -> String {
    format!(
        "Your attempt at `{}` is still far from a working solution. Re-read the problem statement and start from the overall strategy: initialise your result, loop over the input, update the result inside the loop, and return or print it at the end.",
        original.name
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalyzedProgram;
    use crate::cluster::cluster_programs;
    use crate::repair::{repair_attempt, RepairConfig};
    use clara_lang::Value;
    use clara_model::Fuel;

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    fn inputs() -> Vec<Vec<Value>> {
        vec![
            vec![poly(&[6.3, 7.6, 12.14])],
            vec![poly(&[3.0])],
            vec![poly(&[1.0, 2.0, 3.0, 4.0])],
            vec![poly(&[])],
        ]
    }

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const I1: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

    #[test]
    fn feedback_for_the_papers_i1() {
        let ins = inputs();
        let clusters =
            cluster_programs(vec![
                AnalyzedProgram::from_text(C1, "computeDeriv", &ins, Fuel::default()).unwrap()
            ]);
        let attempt = AnalyzedProgram::from_text(I1, "computeDeriv", &ins, Fuel::default()).unwrap();
        let result = repair_attempt(&clusters, &attempt, &ins, &RepairConfig::default());
        let repair = result.best.expect("I1 is repairable against C1's cluster");
        let feedback = render_feedback(&repair, &attempt.program, &FeedbackOptions::default());
        assert!(feedback.is_repair_feedback());
        let text = feedback.lines().join("\n");
        assert!(text.contains("return statement"), "feedback was: {text}");
    }

    #[test]
    fn zero_cost_repairs_mean_the_attempt_is_equivalent() {
        let ins = inputs();
        let analyzed = AnalyzedProgram::from_text(C1, "computeDeriv", &ins, Fuel::default()).unwrap();
        let clusters = cluster_programs(vec![analyzed.clone()]);
        let result = repair_attempt(&clusters, &analyzed, &ins, &RepairConfig::default());
        let repair = result.best.unwrap();
        assert_eq!(repair.total_cost, 0);
        let feedback = render_feedback(&repair, &analyzed.program, &FeedbackOptions::default());
        assert_eq!(feedback, Feedback::Correct);
    }

    #[test]
    fn large_repairs_fall_back_to_generic_strategy() {
        let ins = inputs();
        let clusters =
            cluster_programs(vec![
                AnalyzedProgram::from_text(C1, "computeDeriv", &ins, Fuel::default()).unwrap()
            ]);
        // An empty attempt: everything has to be synthesised.
        let empty = "def computeDeriv(poly):\n    pass\n";
        let attempt = AnalyzedProgram::from_text(empty, "computeDeriv", &ins, Fuel::default()).unwrap();
        let result = repair_attempt(&clusters, &attempt, &ins, &RepairConfig::default());
        let repair = result.best.expect("the trivial repair always exists");
        let feedback = render_feedback(
            &repair,
            &attempt.program,
            &FeedbackOptions { large_repair_threshold: 3, ..FeedbackOptions::default() },
        );
        assert!(matches!(feedback, Feedback::GenericStrategy(_)));
    }
}
