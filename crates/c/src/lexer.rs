//! A hand-written lexer for MiniC.
//!
//! Comments (`//`, `/* */`) and preprocessor lines (`#include <stdio.h>` and
//! friends) are discarded; every token carries the 1-based source line it
//! starts on.

use std::fmt;

/// A MiniC token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A double-quoted string literal (escapes already resolved).
    Str(String),
    /// Any punctuation or operator (`"("`, `"&&"`, `"+="`, ...).
    Punct(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(name) => write!(f, "`{name}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(v) => write!(f, "`{v}`"),
            Tok::Str(_) => write!(f, "a string literal"),
            Tok::Punct(p) => write!(f, "`{p}`"),
        }
    }
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexing error (unterminated comment/string, stray character).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// Description of the problem.
    pub message: String,
}

/// The multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] =
    &["<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--"];

const SINGLE_PUNCT: &[(char, &str)] = &[
    ('(', "("),
    (')', ")"),
    ('{', "{"),
    ('}', "}"),
    ('[', "["),
    (']', "]"),
    (';', ";"),
    (',', ","),
    ('+', "+"),
    ('-', "-"),
    ('*', "*"),
    ('/', "/"),
    ('%', "%"),
    ('=', "="),
    ('<', "<"),
    ('>', ">"),
    ('!', "!"),
    ('?', "?"),
    (':', ":"),
    ('&', "&"),
    ('|', "|"),
];

/// Tokenises MiniC source text.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings/comments and characters
/// outside the language.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, LexError> {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut at_line_start = true;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            at_line_start = true;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Preprocessor lines are skipped wholesale.
        if c == '#' && at_line_start {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        at_line_start = false;
        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            i += 2;
            loop {
                match (chars.get(i), chars.get(i + 1)) {
                    (Some('*'), Some('/')) => {
                        i += 2;
                        break;
                    }
                    (Some('\n'), _) => {
                        line += 1;
                        i += 1;
                    }
                    (Some(_), _) => i += 1,
                    (None, _) => {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated /* comment".to_owned(),
                        });
                    }
                }
            }
            continue;
        }
        // String literals.
        if c == '"' {
            let start_line = line;
            i += 1;
            let mut text = String::new();
            loop {
                match chars.get(i) {
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some('\\') => {
                        let escaped = match chars.get(i + 1) {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some('\\') => '\\',
                            Some('"') => '"',
                            Some('0') => '\0',
                            Some(other) => *other,
                            None => {
                                return Err(LexError {
                                    line: start_line,
                                    message: "unterminated string literal".to_owned(),
                                });
                            }
                        };
                        text.push(escaped);
                        i += 2;
                    }
                    Some('\n') | None => {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated string literal".to_owned(),
                        });
                    }
                    Some(other) => {
                        text.push(*other);
                        i += 1;
                    }
                }
            }
            out.push(SpannedTok { tok: Tok::Str(text), line: start_line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            if chars.get(i) == Some(&'.') && chars.get(i + 1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                is_float = true;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            let tok =
                if is_float {
                    Tok::Float(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("malformed float literal `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("integer literal `{text}` out of range"),
                    })?)
                };
            out.push(SpannedTok { tok, line });
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.push(SpannedTok { tok: Tok::Ident(text), line });
            continue;
        }
        // Operators, longest first.
        let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
        if let Some(p) = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p)) {
            out.push(SpannedTok { tok: Tok::Punct(p), line });
            i += p.len();
            continue;
        }
        if let Some((_, p)) = SINGLE_PUNCT.iter().find(|(ch, _)| *ch == c) {
            out.push(SpannedTok { tok: Tok::Punct(p), line });
            i += 1;
            continue;
        }
        return Err(LexError { line, message: format!("unexpected character `{c}`") });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_function_header() {
        let toks = lex("#include <stdio.h>\nint fib(int k) { // loop\n  return k; }").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert_eq!(kinds[0], &Tok::Ident("int".to_owned()));
        assert_eq!(kinds[1], &Tok::Ident("fib".to_owned()));
        assert!(toks.iter().any(|t| t.tok == Tok::Punct(";")));
        // `return` is on line 3 (the #include took line 1).
        let ret = toks.iter().find(|t| t.tok == Tok::Ident("return".to_owned())).unwrap();
        assert_eq!(ret.line, 3);
    }

    #[test]
    fn lexes_operators_maximal_munch() {
        let toks = lex("a <= b && c++ + d == e").unwrap();
        let puncts: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<=", "&&", "++", "+", "=="]);
    }

    #[test]
    fn lexes_literals_and_strings() {
        let toks = lex("printf(\"n=%d\\n\", 3.5);").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Str("n=%d\n".to_owned())));
        assert!(toks.iter().any(|t| t.tok == Tok::Float(3.5)));
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("int x = `bad`;").is_err());
    }
}
