//! # clara-c — MiniC, the second frontend of `clara-rs`
//!
//! The original Clara tool handled both Python *and C* student submissions
//! by lowering them into one program model (§3 of the paper). This crate is
//! that second frontend: a C90-ish subset — `int`/`float` scalars, array
//! parameters, `if`/`else`, `while`, `for`, `return`, `printf` — parsed by a
//! hand-written [`lexer`]/[`parser`], pretty-printed by [`pretty`], and
//! desugared by [`lower`] into the language-neutral surface IR of
//! `clara-model`, so clustering, matching, ILP repair and the feedback
//! service work on MiniC submissions unchanged.
//!
//! Expressions reuse [`clara_lang::Expr`] (the model's own expression type):
//! `&&`/`||`/`!` are the shared boolean operators, `c ? a : b` is the
//! model's `ite(...)`, `/` is integer division unless a float literal makes
//! it float division, and `str`-style output formatting keeps `printf`
//! self-consistent across the pipeline.
//!
//! Subset limits (rejected with clear errors, like the paper's "unsupported
//! feature" failures in §6.2): helper functions, pointers, string variables,
//! scalar-only declarations, and `break`/`continue` under nested loops (a
//! model restriction shared with MiniPy). `continue` directly inside a `for`
//! body is supported by duplicating the loop step before each `continue`
//! during desugaring, so C's jump-to-step semantics is preserved.
//!
//! ## Example
//!
//! ```rust
//! use clara_c::{lower_entry, parse_c_program};
//! use clara_lang::Value;
//! use clara_model::{execute, Fuel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_c_program(
//!     "int fib(int k) {\n    int a = 1;\n    int b = 1;\n    int n = 1;\n    while (b <= k) {\n        int c = a + b;\n        a = b;\n        b = c;\n        n = n + 1;\n    }\n    printf(\"%d\\n\", n);\n    return 0;\n}\n",
//! )?;
//! let model = lower_entry(&program, "fib")?;
//! let trace = execute(&model, &[Value::Int(20)], Fuel::default());
//! assert_eq!(trace.output(), "7\n");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod unparse;

pub use ast::{CFunction, CParam, CProgram, CStmt, CType};
pub use lower::{lower_entry, lower_function, surface_function};
pub use parser::{parse_c_expression, parse_c_program, ParseCError};
pub use pretty::{c_expr_to_string, c_function_to_string, c_program_to_string, c_stmt_to_string};
pub use unparse::{minic_function, minic_source};

use clara_lang::{Expr, ProblemSpec};
use clara_model::frontend::{model_passes, Frontend, FrontendError, Lang, ParsedSubmission};
use clara_model::surface::SurfaceFunction;
use clara_model::{LowerError, Program};

/// The MiniC frontend: parsing, C-syntax expression rendering and
/// model-execution grading behind the language-agnostic traits of
/// `clara-model::frontend`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiniCFrontend;

/// The shared MiniC frontend instance.
pub static MINIC: MiniCFrontend = MiniCFrontend;

struct MiniCParsed(CProgram);

impl ParsedSubmission for MiniCParsed {
    fn lower(&self, entry: &str) -> Result<Program, LowerError> {
        lower_entry(&self.0, entry)
    }

    fn structural_hash(&self) -> u64 {
        self.0.structural_hash()
    }

    fn ast_size(&self) -> usize {
        self.0.ast_size()
    }

    fn passes(&self, spec: &ProblemSpec) -> bool {
        // MiniC has no dedicated interpreter: grading executes the *model*
        // (Definition 3.5), which the lowering tests hold trace-equivalent
        // to the source semantics. Submissions the model cannot express are
        // ungradable and therefore incorrect.
        match self.lower(&spec.entry) {
            Ok(program) => model_passes(&program, spec),
            Err(_) => false,
        }
    }

    fn surface(&self, entry: &str) -> Result<SurfaceFunction, LowerError> {
        let function = self
            .0
            .function(entry)
            .ok_or_else(|| LowerError::new(1, format!("entry function `{entry}` is not defined")))?;
        surface_function(function)
    }
}

impl Frontend for MiniCFrontend {
    fn lang(&self) -> Lang {
        Lang::MiniC
    }

    fn parse(&self, source: &str) -> Result<Box<dyn ParsedSubmission>, FrontendError> {
        match parse_c_program(source) {
            Ok(parsed) => Ok(Box::new(MiniCParsed(parsed))),
            Err(e) => Err(FrontendError::new(e.line, e.to_string())),
        }
    }

    fn render_expr(&self, expr: &Expr) -> String {
        c_expr_to_string(expr)
    }

    fn render_function(&self, function: &SurfaceFunction) -> Result<String, FrontendError> {
        minic_source(function).map_err(|e| FrontendError::new(e.line, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::{TestCase, Value};

    const FIB_C: &str = "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b <= k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
";

    fn fib_spec() -> ProblemSpec {
        ProblemSpec::new(
            "fibonacci_c",
            "fib",
            vec![
                TestCase::printing(vec![Value::Int(1)], "2\n"),
                TestCase::printing(vec![Value::Int(20)], "7\n"),
            ],
        )
    }

    #[test]
    fn frontend_parses_grades_and_renders() {
        let frontend = &MINIC;
        assert_eq!(frontend.lang(), Lang::MiniC);
        let parsed = frontend.parse(FIB_C).expect("fib parses");
        assert!(parsed.passes(&fib_spec()));
        assert!(parsed.ast_size() > 10);
        let wrong = frontend.parse(&FIB_C.replace("b <= k", "b < k")).expect("variant parses");
        assert!(!wrong.passes(&fib_spec()));
        let err = frontend.parse("int f( {").err().expect("syntax error");
        assert!(err.to_string().contains("C parse error"), "{err}");
        let expr = parse_c_expression("a && !b").unwrap();
        assert_eq!(frontend.render_expr(&expr), "a && !b");
    }

    #[test]
    fn structural_hash_is_formatting_insensitive_through_the_trait() {
        let a = MINIC.parse("int f(int x) { return x + 1; }").unwrap();
        let b = MINIC.parse("int f(int x)\n{\n    return (x + 1);\n}\n").unwrap();
        assert_eq!(a.structural_hash(), b.structural_hash());
    }
}
