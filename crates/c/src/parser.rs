//! A recursive-descent parser for MiniC.
//!
//! The expression grammar follows C precedence (`?:` lowest, then `||`,
//! `&&`, equality, relational, additive, multiplicative, unary, postfix) and
//! produces shared [`Expr`] trees: `&&`/`||`/`!` map to the boolean
//! operators, `c ? a : b` to the model's `ite(...)`, and `a[i]` to
//! [`Expr::Index`]. `/` maps to integer (floor) division unless a float
//! literal appears in either operand — the C-typed division the intro
//! assignments in this corpus actually use.

use std::fmt;

use clara_lang::ast::{Expr, Lit, Target};
use clara_lang::{BinOp, UnOp};

use crate::ast::{CFunction, CParam, CProgram, CStmt, CType};
use crate::lexer::{lex, SpannedTok, Tok};

/// A MiniC syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCError {
    /// 1-based source line of the offending token.
    pub line: u32,
    /// Human readable description of the problem.
    pub message: String,
}

impl ParseCError {
    fn new(line: u32, message: impl Into<String>) -> Self {
        ParseCError { line, message: message.into() }
    }
}

impl fmt::Display for ParseCError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCError {}

const KEYWORDS: &[&str] =
    &["int", "float", "double", "void", "if", "else", "while", "for", "return", "break", "continue"];

/// Parses a MiniC source file.
///
/// # Errors
///
/// Returns a [`ParseCError`] describing the first syntax error.
pub fn parse_c_program(source: &str) -> Result<CProgram, ParseCError> {
    let toks = lex(source).map_err(|e| ParseCError::new(e.line, e.message))?;
    let mut parser = Parser { toks, pos: 0 };
    let mut functions = Vec::new();
    while !parser.at_end() {
        functions.push(parser.function()?);
    }
    Ok(CProgram { functions })
}

/// Parses a single MiniC expression (used by tests and tools).
///
/// # Errors
///
/// Returns a [`ParseCError`] when the text is not exactly one expression.
pub fn parse_c_expression(source: &str) -> Result<Expr, ParseCError> {
    let toks = lex(source).map_err(|e| ParseCError::new(e.line, e.message))?;
    let mut parser = Parser { toks, pos: 0 };
    let expr = parser.expression()?;
    if !parser.at_end() {
        let line = parser.line();
        return Err(ParseCError::new(line, "trailing input after expression"));
    }
    Ok(expr)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.line).unwrap_or(1)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, offset: usize) -> Option<&Tok> {
        self.toks.get(self.pos + offset).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let tok = self.toks.get(self.pos).map(|t| t.tok.clone());
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(found)) if *found == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseCError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{p}`")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(name)) = self.peek() {
            if name == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(name)) if name == kw)
    }

    fn unexpected(&self, wanted: &str) -> ParseCError {
        let line = self.line();
        match self.peek() {
            Some(tok) => ParseCError::new(line, format!("expected {wanted}, found {tok}")),
            None => ParseCError::new(line, format!("expected {wanted}, found end of input")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, u32), ParseCError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Ident(name)) if !KEYWORDS.contains(&name.as_str()) => {
                let name = name.clone();
                self.pos += 1;
                Ok((name, line))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn peek_type(&self) -> Option<CType> {
        match self.peek() {
            Some(Tok::Ident(name)) => match name.as_str() {
                "int" => Some(CType::Int),
                "float" | "double" => Some(CType::Float),
                "void" => Some(CType::Void),
                _ => None,
            },
            _ => None,
        }
    }

    fn type_keyword(&mut self) -> Result<CType, ParseCError> {
        match self.peek_type() {
            Some(ty) => {
                self.pos += 1;
                Ok(ty)
            }
            None => Err(self.unexpected("a type (`int`, `float`, `void`)")),
        }
    }

    fn function(&mut self) -> Result<CFunction, ParseCError> {
        let line = self.line();
        let ret = self.type_keyword()?;
        let (name, _) = self.ident("a function name")?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.peek_keyword("void") && self.peek_at(1) == Some(&Tok::Punct(")")) {
                self.pos += 1;
            } else {
                loop {
                    let ty = self.type_keyword()?;
                    if ty == CType::Void {
                        return Err(ParseCError::new(self.line(), "`void` is not a parameter type"));
                    }
                    let (pname, _) = self.ident("a parameter name")?;
                    let mut array = false;
                    if self.eat_punct("[") {
                        self.expect_punct("]")?;
                        array = true;
                    }
                    params.push(CParam { name: pname, ty, array });
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
        }
        let body = self.braced_block()?;
        let mut function = CFunction { name, ret, params, body, line };
        retype_divisions(&mut function);
        Ok(function)
    }

    fn braced_block(&mut self) -> Result<Vec<CStmt>, ParseCError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return Err(self.unexpected("`}`"));
            }
            self.statement_into(&mut stmts)?;
        }
        Ok(stmts)
    }

    /// A block body: either `{ ... }` or a single statement.
    fn block_or_stmt(&mut self) -> Result<Vec<CStmt>, ParseCError> {
        if self.peek() == Some(&Tok::Punct("{")) {
            self.braced_block()
        } else {
            let mut stmts = Vec::new();
            self.statement_into(&mut stmts)?;
            Ok(stmts)
        }
    }

    /// Parses one statement; declarations with several declarators push
    /// several statements.
    fn statement_into(&mut self, out: &mut Vec<CStmt>) -> Result<(), ParseCError> {
        let line = self.line();
        if self.eat_punct(";") {
            out.push(CStmt::Empty { line });
            return Ok(());
        }
        if self.peek_type().is_some() {
            self.declaration_into(out)?;
            self.expect_punct(";")?;
            return Ok(());
        }
        if self.eat_keyword("if") {
            out.push(self.if_statement(line)?);
            return Ok(());
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            out.push(CStmt::While { cond, body, line });
            return Ok(());
        }
        if self.eat_keyword("for") {
            out.push(self.for_statement(line)?);
            return Ok(());
        }
        if self.eat_keyword("return") {
            let value = if self.peek() == Some(&Tok::Punct(";")) { None } else { Some(self.expression()?) };
            self.expect_punct(";")?;
            out.push(CStmt::Return { value, line });
            return Ok(());
        }
        if self.eat_keyword("break") {
            self.expect_punct(";")?;
            out.push(CStmt::Break { line });
            return Ok(());
        }
        if self.eat_keyword("continue") {
            self.expect_punct(";")?;
            out.push(CStmt::Continue { line });
            return Ok(());
        }
        if self.peek_keyword("printf") {
            out.push(self.printf_statement(line)?);
            return Ok(());
        }
        let stmt = self.simple_statement()?;
        self.expect_punct(";")?;
        out.push(stmt);
        Ok(())
    }

    fn if_statement(&mut self, line: u32) -> Result<CStmt, ParseCError> {
        self.expect_punct("(")?;
        let cond = self.expression()?;
        self.expect_punct(")")?;
        let then_body = self.block_or_stmt()?;
        let else_body = if self.eat_keyword("else") {
            if self.peek_keyword("if") {
                let nested_line = self.line();
                self.pos += 1;
                vec![self.if_statement(nested_line)?]
            } else {
                self.block_or_stmt()?
            }
        } else {
            Vec::new()
        };
        Ok(CStmt::If { cond, then_body, else_body, line })
    }

    fn for_statement(&mut self, line: u32) -> Result<CStmt, ParseCError> {
        self.expect_punct("(")?;
        let init = if self.peek() == Some(&Tok::Punct(";")) {
            None
        } else if self.peek_type().is_some() {
            let mut decls = Vec::new();
            self.declaration_into(&mut decls)?;
            if decls.len() != 1 {
                return Err(ParseCError::new(line, "a for-loop initialiser declares one variable"));
            }
            Some(Box::new(decls.remove(0)))
        } else {
            Some(Box::new(self.simple_statement()?))
        };
        self.expect_punct(";")?;
        let cond = if self.peek() == Some(&Tok::Punct(";")) { None } else { Some(self.expression()?) };
        self.expect_punct(";")?;
        let step = if self.peek() == Some(&Tok::Punct(")")) {
            None
        } else {
            Some(Box::new(self.simple_statement()?))
        };
        self.expect_punct(")")?;
        let body = self.block_or_stmt()?;
        Ok(CStmt::For { init, cond, step, body, line })
    }

    fn printf_statement(&mut self, line: u32) -> Result<CStmt, ParseCError> {
        self.pos += 1; // `printf`
        self.expect_punct("(")?;
        let format = match self.bump() {
            Some(Tok::Str(text)) => text,
            _ => {
                return Err(ParseCError::new(line, "printf needs a string-literal format as first argument"));
            }
        };
        let mut args = Vec::new();
        while self.eat_punct(",") {
            args.push(self.expression()?);
        }
        self.expect_punct(")")?;
        self.expect_punct(";")?;
        Ok(CStmt::Printf { format, args, line })
    }

    /// An assignment / increment / expression statement, without the
    /// trailing `;` (shared between statement position and for-headers).
    fn declaration_into(&mut self, out: &mut Vec<CStmt>) -> Result<(), ParseCError> {
        let ty = self.type_keyword()?;
        if ty == CType::Void {
            return Err(ParseCError::new(self.line(), "`void` is not a variable type"));
        }
        loop {
            let (name, line) = self.ident("a variable name")?;
            let init = if self.eat_punct("=") { Some(self.expression()?) } else { None };
            out.push(CStmt::Decl { name, ty, init, line });
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(())
    }

    fn simple_statement(&mut self) -> Result<CStmt, ParseCError> {
        let line = self.line();
        // Prefix increment/decrement.
        for (p, op) in [("++", BinOp::Add), ("--", BinOp::Sub)] {
            if self.peek() == Some(&Tok::Punct(p)) {
                self.pos += 1;
                let target = self.assignment_target(line)?;
                return Ok(CStmt::Assign { target, op: Some(op), value: Expr::int(1), line });
            }
        }
        let expr = self.expression()?;
        let assign_op = match self.peek() {
            Some(Tok::Punct("=")) => Some(None),
            Some(Tok::Punct("+=")) => Some(Some(BinOp::Add)),
            Some(Tok::Punct("-=")) => Some(Some(BinOp::Sub)),
            Some(Tok::Punct("*=")) => Some(Some(BinOp::Mul)),
            Some(Tok::Punct("/=")) => Some(Some(BinOp::FloorDiv)),
            Some(Tok::Punct("%=")) => Some(Some(BinOp::Mod)),
            _ => None,
        };
        if let Some(op) = assign_op {
            self.pos += 1;
            let target =
                expr_to_target(&expr).ok_or_else(|| ParseCError::new(line, "invalid assignment target"))?;
            let value = self.expression()?;
            return Ok(CStmt::Assign { target, op, value, line });
        }
        for (p, op) in [("++", BinOp::Add), ("--", BinOp::Sub)] {
            if self.peek() == Some(&Tok::Punct(p)) {
                self.pos += 1;
                let target = expr_to_target(&expr)
                    .ok_or_else(|| ParseCError::new(line, "invalid increment target"))?;
                return Ok(CStmt::Assign { target, op: Some(op), value: Expr::int(1), line });
            }
        }
        Ok(CStmt::ExprStmt { expr, line })
    }

    fn assignment_target(&mut self, line: u32) -> Result<Target, ParseCError> {
        let (name, _) = self.ident("a variable name")?;
        if self.eat_punct("[") {
            let index = self.expression()?;
            self.expect_punct("]")?;
            Ok(Target::Index(name, index))
        } else {
            let _ = line;
            Ok(Target::Name(name))
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expression(&mut self) -> Result<Expr, ParseCError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseCError> {
        let cond = self.logic_or()?;
        if self.eat_punct("?") {
            let then = self.expression()?;
            self.expect_punct(":")?;
            let otherwise = self.ternary()?;
            Ok(Expr::ite(cond, then, otherwise))
        } else {
            Ok(cond)
        }
    }

    fn logic_or(&mut self) -> Result<Expr, ParseCError> {
        let mut lhs = self.logic_and()?;
        while self.eat_punct("||") {
            let rhs = self.logic_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseCError> {
        let mut lhs = self.equality()?;
        while self.eat_punct("&&") {
            let rhs = self.equality()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseCError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("==")) => BinOp::Eq,
                Some(Tok::Punct("!=")) => BinOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.relational()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseCError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("<")) => BinOp::Lt,
                Some(Tok::Punct("<=")) => BinOp::Le,
                Some(Tok::Punct(">")) => BinOp::Gt,
                Some(Tok::Punct(">=")) => BinOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseCError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("+")) => BinOp::Add,
                Some(Tok::Punct("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseCError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("*")) => BinOp::Mul,
                Some(Tok::Punct("%")) => BinOp::Mod,
                Some(Tok::Punct("/")) => BinOp::Div, // fixed up below
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            // C `/` truncates on integers and is real division on floats.
            // At expression-parse time only literals are visible, so `/`
            // provisionally becomes FloorDiv unless a float literal appears;
            // `retype_divisions` revisits every division once the function's
            // declared float variables are known.
            lhs = if op == BinOp::Div && !contains_float_literal(&lhs) && !contains_float_literal(&rhs) {
                Expr::bin(BinOp::FloorDiv, lhs, rhs)
            } else {
                Expr::bin(op, lhs, rhs)
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseCError> {
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseCError> {
        let mut expr = self.primary()?;
        while self.eat_punct("[") {
            let index = self.expression()?;
            self.expect_punct("]")?;
            expr = Expr::Index(Box::new(expr), Box::new(index));
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, ParseCError> {
        let line = self.line();
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Expr::int(v))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(Expr::float(v))
            }
            Some(Tok::Str(text)) => {
                self.pos += 1;
                Ok(Expr::str(text))
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let expr = self.expression()?;
                self.expect_punct(")")?;
                Ok(expr)
            }
            Some(Tok::Ident(name)) if !KEYWORDS.contains(&name.as_str()) => {
                self.pos += 1;
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expression()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(Expr::call(name, args))
                } else {
                    Ok(Expr::var(name))
                }
            }
            _ => Err(ParseCError::new(line, {
                match self.peek() {
                    Some(tok) => format!("expected an expression, found {tok}"),
                    None => "expected an expression, found end of input".to_owned(),
                }
            })),
        }
    }
}

fn expr_to_target(expr: &Expr) -> Option<Target> {
    match expr {
        Expr::Var(name) => Some(Target::Name(name.clone())),
        Expr::Index(base, index) => match base.as_ref() {
            Expr::Var(name) => Some(Target::Index(name.clone(), (**index).clone())),
            _ => None,
        },
        _ => None,
    }
}

/// Retypes the provisional integer divisions of a parsed function using its
/// declared types: a `/` (or `/=`) whose operand mentions a `float`-typed
/// parameter, array or local — or a float literal — is real division
/// ([`BinOp::Div`]), everything else stays C integer division
/// ([`BinOp::FloorDiv`]). The expression parser cannot see declarations, so
/// this runs as a fix-up once the whole function body is known.
fn retype_divisions(function: &mut CFunction) {
    let mut floats: Vec<String> =
        function.params.iter().filter(|p| p.ty == CType::Float).map(|p| p.name.clone()).collect();
    collect_float_decls(&function.body, &mut floats);
    retype_stmts(&mut function.body, &floats);
}

fn collect_float_decls(stmts: &[CStmt], out: &mut Vec<String>) {
    for stmt in stmts {
        match stmt {
            CStmt::Decl { name, ty: CType::Float, .. } => out.push(name.clone()),
            CStmt::If { then_body, else_body, .. } => {
                collect_float_decls(then_body, out);
                collect_float_decls(else_body, out);
            }
            CStmt::While { body, .. } => collect_float_decls(body, out),
            CStmt::For { init, body, .. } => {
                if let Some(init) = init {
                    collect_float_decls(std::slice::from_ref(init), out);
                }
                collect_float_decls(body, out);
            }
            _ => {}
        }
    }
}

fn retype_stmts(stmts: &mut [CStmt], floats: &[String]) {
    for stmt in stmts {
        match stmt {
            CStmt::Decl { init: Some(init), .. } => retype_expr(init, floats),
            CStmt::Decl { .. } | CStmt::Break { .. } | CStmt::Continue { .. } | CStmt::Empty { .. } => {}
            CStmt::Assign { target, op, value, .. } => {
                if let Target::Index(_, index) = target {
                    retype_expr(index, floats);
                }
                retype_expr(value, floats);
                let target_is_float = floats.iter().any(|f| f == target.base_name());
                if *op == Some(BinOp::FloorDiv) && (target_is_float || is_floatish(value, floats)) {
                    *op = Some(BinOp::Div);
                }
            }
            CStmt::If { cond, then_body, else_body, .. } => {
                retype_expr(cond, floats);
                retype_stmts(then_body, floats);
                retype_stmts(else_body, floats);
            }
            CStmt::While { cond, body, .. } => {
                retype_expr(cond, floats);
                retype_stmts(body, floats);
            }
            CStmt::For { init, cond, step, body, .. } => {
                if let Some(init) = init {
                    retype_stmts(std::slice::from_mut(init.as_mut()), floats);
                }
                if let Some(cond) = cond {
                    retype_expr(cond, floats);
                }
                if let Some(step) = step {
                    retype_stmts(std::slice::from_mut(step.as_mut()), floats);
                }
                retype_stmts(body, floats);
            }
            CStmt::Return { value: Some(value), .. } => retype_expr(value, floats),
            CStmt::Return { value: None, .. } => {}
            CStmt::Printf { args, .. } => {
                for arg in args {
                    retype_expr(arg, floats);
                }
            }
            CStmt::ExprStmt { expr, .. } => retype_expr(expr, floats),
        }
    }
}

fn retype_expr(expr: &mut Expr, floats: &[String]) {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => {}
        Expr::List(items) | Expr::Tuple(items) => {
            for item in items {
                retype_expr(item, floats);
            }
        }
        Expr::Unary(_, inner) => retype_expr(inner, floats),
        Expr::Binary(op, lhs, rhs) => {
            retype_expr(lhs, floats);
            retype_expr(rhs, floats);
            if *op == BinOp::FloorDiv && (is_floatish(lhs, floats) || is_floatish(rhs, floats)) {
                *op = BinOp::Div;
            }
        }
        Expr::Index(base, idx) => {
            retype_expr(base, floats);
            retype_expr(idx, floats);
        }
        Expr::Slice(base, lo, hi) => {
            retype_expr(base, floats);
            if let Some(lo) = lo {
                retype_expr(lo, floats);
            }
            if let Some(hi) = hi {
                retype_expr(hi, floats);
            }
        }
        Expr::Call(_, args) => {
            for arg in args {
                retype_expr(arg, floats);
            }
        }
        Expr::Method(recv, _, args) => {
            retype_expr(recv, floats);
            for arg in args {
                retype_expr(arg, floats);
            }
        }
    }
}

/// `true` when the expression's value is (approximately) float-typed: it
/// mentions a float literal or a declared-float variable.
fn is_floatish(expr: &Expr, floats: &[String]) -> bool {
    if contains_float_literal(expr) {
        return true;
    }
    expr.variables().iter().any(|v| floats.iter().any(|f| f == v))
}

fn contains_float_literal(expr: &Expr) -> bool {
    match expr {
        Expr::Lit(Lit::Float(_)) => true,
        Expr::Lit(_) | Expr::Var(_) => false,
        Expr::List(items) | Expr::Tuple(items) => items.iter().any(contains_float_literal),
        Expr::Unary(_, inner) => contains_float_literal(inner),
        Expr::Binary(_, lhs, rhs) => contains_float_literal(lhs) || contains_float_literal(rhs),
        Expr::Index(base, idx) => contains_float_literal(base) || contains_float_literal(idx),
        Expr::Slice(base, lo, hi) => {
            contains_float_literal(base)
                || lo.as_ref().map(|e| contains_float_literal(e)).unwrap_or(false)
                || hi.as_ref().map(|e| contains_float_literal(e)).unwrap_or(false)
        }
        Expr::Call(_, args) => args.iter().any(contains_float_literal),
        Expr::Method(recv, _, args) => {
            contains_float_literal(recv) || args.iter().any(contains_float_literal)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_fibonacci_function() {
        let src = "\
#include <stdio.h>

int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b <= k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
";
        let program = parse_c_program(src).unwrap();
        assert_eq!(program.functions.len(), 1);
        let f = program.function("fib").unwrap();
        assert_eq!(f.param_names(), vec!["k".to_owned()]);
        assert_eq!(f.ret, CType::Int);
        assert!(matches!(f.body[3], CStmt::While { .. }));
        assert!(matches!(f.body[4], CStmt::Printf { .. }));
        assert!(program.ast_size() > 10);
    }

    #[test]
    fn parses_for_loops_and_increments() {
        let src = "\
void count(int n) {
    int i;
    for (i = 0; i < n; i++) {
        printf(\"%d\\n\", i);
    }
}
";
        let program = parse_c_program(src).unwrap();
        let f = program.function("count").unwrap();
        match &f.body[1] {
            CStmt::For { init, cond, step, body, .. } => {
                assert!(matches!(init.as_deref(), Some(CStmt::Assign { .. })));
                assert!(cond.is_some());
                assert!(
                    matches!(step.as_deref(), Some(CStmt::Assign { op: Some(BinOp::Add), .. })),
                    "{step:?}"
                );
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected a for loop, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence_matches_c() {
        let e = parse_c_expression("a + b * c").unwrap();
        assert_eq!(
            e,
            Expr::bin(BinOp::Add, Expr::var("a"), Expr::bin(BinOp::Mul, Expr::var("b"), Expr::var("c")))
        );
        let e = parse_c_expression("a < b && !c || d").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Or,
                Expr::bin(
                    BinOp::And,
                    Expr::bin(BinOp::Lt, Expr::var("a"), Expr::var("b")),
                    Expr::Unary(UnOp::Not, Box::new(Expr::var("c"))),
                ),
                Expr::var("d"),
            )
        );
        // Ternary becomes the model's ite(...).
        let e = parse_c_expression("x > 0 ? x : -x").unwrap();
        assert_eq!(
            e,
            Expr::ite(
                Expr::bin(BinOp::Gt, Expr::var("x"), Expr::int(0)),
                Expr::var("x"),
                Expr::Unary(UnOp::Neg, Box::new(Expr::var("x"))),
            )
        );
    }

    #[test]
    fn division_is_integer_unless_a_float_literal_appears() {
        assert_eq!(
            parse_c_expression("m / 10").unwrap(),
            Expr::bin(BinOp::FloorDiv, Expr::var("m"), Expr::int(10))
        );
        assert_eq!(
            parse_c_expression("m / 2.0").unwrap(),
            Expr::bin(BinOp::Div, Expr::var("m"), Expr::float(2.0))
        );
    }

    #[test]
    fn declared_float_types_make_division_real() {
        // No float literal in sight: the declared types decide.
        let src = "\
float half(float x) {
    float y = x / 2;
    y /= 3;
    return y;
}
";
        let program = parse_c_program(src).unwrap();
        let f = program.function("half").unwrap();
        match &f.body[0] {
            CStmt::Decl { init: Some(init), .. } => {
                assert_eq!(init, &Expr::bin(BinOp::Div, Expr::var("x"), Expr::int(2)), "{init:?}");
            }
            other => panic!("expected a float decl, got {other:?}"),
        }
        match &f.body[1] {
            CStmt::Assign { op, .. } => assert_eq!(*op, Some(BinOp::Div)),
            other => panic!("expected /=, got {other:?}"),
        }
        // Integer declarations keep C integer division, including /=.
        let src = "\
int quarter(int n) {
    int m = n / 2;
    m /= 2;
    return m;
}
";
        let program = parse_c_program(src).unwrap();
        let f = program.function("quarter").unwrap();
        match &f.body[0] {
            CStmt::Decl { init: Some(init), .. } => {
                assert_eq!(init, &Expr::bin(BinOp::FloorDiv, Expr::var("n"), Expr::int(2)));
            }
            other => panic!("expected an int decl, got {other:?}"),
        }
        match &f.body[1] {
            CStmt::Assign { op, .. } => assert_eq!(*op, Some(BinOp::FloorDiv)),
            other => panic!("expected /=, got {other:?}"),
        }
        // Float array parameters count as float-typed operands.
        let src = "\
float avg2(float xs[]) {
    return (xs[0] + xs[1]) / 2;
}
";
        let program = parse_c_program(src).unwrap();
        let f = program.function("avg2").unwrap();
        match &f.body[0] {
            CStmt::Return { value: Some(value), .. } => match value {
                Expr::Binary(op, _, _) => assert_eq!(*op, BinOp::Div, "{value:?}"),
                other => panic!("expected a division, got {other:?}"),
            },
            other => panic!("expected a return, got {other:?}"),
        }
    }

    #[test]
    fn else_if_chains_nest() {
        let src = "\
int sign(int x) {
    if (x > 0) {
        return 1;
    } else if (x == 0) {
        return 0;
    } else {
        return -1;
    }
}
";
        let program = parse_c_program(src).unwrap();
        let f = program.function("sign").unwrap();
        match &f.body[0] {
            CStmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], CStmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let err = parse_c_program("int f(int x) {\n    return x +;\n}\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("C parse error at line 2"), "{err}");
        assert!(parse_c_program("int f( {}").is_err());
        assert!(parse_c_program("int f(int x) { x = ; }").is_err());
    }

    #[test]
    fn array_params_and_index_assignments() {
        let src = "\
float head_or_zero(float xs[], int n) {
    float out[];
    if (n > 0) {
        out = xs;
        out[0] = xs[0] * 2.0;
        return out[0];
    }
    return 0.0;
}
";
        // `float out[];` is not in the subset — declarations are scalar.
        assert!(parse_c_program(src).is_err());
        let ok = "\
float first_doubled(float xs[], int n) {
    if (n > 0) {
        return xs[0] * 2.0;
    }
    return 0.0;
}
";
        let program = parse_c_program(ok).unwrap();
        let f = program.function("first_doubled").unwrap();
        assert!(f.params[0].array);
        assert!(!f.params[1].array);
    }
}
