//! Abstract syntax trees of MiniC programs.
//!
//! MiniC reuses the shared expression type [`clara_lang::Expr`] — the same
//! type the program model's update expressions use — so the parser produces
//! model-ready expression trees directly (`&&` becomes [`BinOp::And`],
//! `c ? a : b` becomes the model's `ite(...)` call, and so on). Only the
//! statement layer is C-specific.

use clara_lang::ast::{Expr, Target};
use clara_lang::BinOp;

/// A MiniC value type (the subset has no pointers; arrays appear only as
/// parameter markers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CType {
    /// `int`
    Int,
    /// `float` (also accepted: `double`)
    Float,
    /// `void` (return type only)
    Void,
}

impl CType {
    /// The C keyword of the type.
    pub fn keyword(self) -> &'static str {
        match self {
            CType::Int => "int",
            CType::Float => "float",
            CType::Void => "void",
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct CParam {
    /// Parameter name.
    pub name: String,
    /// Element type.
    pub ty: CType,
    /// Whether the parameter is an array (`int xs[]`).
    pub array: bool,
}

/// A MiniC statement. Every statement carries the 1-based source line it
/// starts on so that generated feedback can point at concrete locations.
#[derive(Debug, Clone, PartialEq)]
pub enum CStmt {
    /// A local declaration `int x;` or `int x = e;` (one declarator; the
    /// parser splits comma lists into one statement each).
    Decl {
        /// Declared variable.
        name: String,
        /// Declared type.
        ty: CType,
        /// Initialiser, if any.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `target = value;`, or an augmented assignment when `op` is `Some`
    /// (`x += e;`, `a[i] *= e;`, and the desugared `x++;`/`x--;`).
    Assign {
        /// Assignment target.
        target: Target,
        /// Augmented-assignment operator, if any.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) {...} else {...}` (an `else if` chain is nested in
    /// `else_body`).
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements of the then branch.
        then_body: Vec<CStmt>,
        /// Statements of the else branch (possibly empty).
        else_body: Vec<CStmt>,
        /// Source line.
        line: u32,
    },
    /// `while (cond) {...}`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<CStmt>,
        /// Source line.
        line: u32,
    },
    /// `for (init; cond; step) {...}`; any of the three headers may be
    /// empty. `init` is a declaration or assignment, `step` an assignment.
    For {
        /// Loop initialiser.
        init: Option<Box<CStmt>>,
        /// Loop condition (`None` = always true).
        cond: Option<Expr>,
        /// Loop step.
        step: Option<Box<CStmt>>,
        /// Loop body.
        body: Vec<CStmt>,
        /// Source line.
        line: u32,
    },
    /// `return e;` / `return;`
    Return {
        /// Returned expression, if any.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `printf(fmt, args...);` — the observable output of a MiniC program.
    Printf {
        /// The format string (verbatim, with `%d`/`%f`/`%s` specifiers).
        format: String,
        /// The arguments consumed by the specifiers.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A bare expression statement with no model effect.
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `break;`
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue;`
    Continue {
        /// Source line.
        line: u32,
    },
    /// An empty statement `;`.
    Empty {
        /// Source line.
        line: u32,
    },
}

impl CStmt {
    /// The 1-based source line the statement starts on.
    pub fn line(&self) -> u32 {
        match self {
            CStmt::Decl { line, .. }
            | CStmt::Assign { line, .. }
            | CStmt::If { line, .. }
            | CStmt::While { line, .. }
            | CStmt::For { line, .. }
            | CStmt::Return { line, .. }
            | CStmt::Printf { line, .. }
            | CStmt::ExprStmt { line, .. }
            | CStmt::Break { line }
            | CStmt::Continue { line }
            | CStmt::Empty { line } => *line,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CFunction {
    /// Function name.
    pub name: String,
    /// Declared return type.
    pub ret: CType,
    /// Parameters, in declaration order.
    pub params: Vec<CParam>,
    /// Function body.
    pub body: Vec<CStmt>,
    /// Source line of the function header.
    pub line: u32,
}

impl CFunction {
    /// The parameter names, in order.
    pub fn param_names(&self) -> Vec<String> {
        self.params.iter().map(|p| p.name.clone()).collect()
    }
}

/// A parsed MiniC source file: a sequence of function definitions
/// (preprocessor lines and comments are discarded by the lexer).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CProgram {
    /// The function definitions, in source order.
    pub functions: Vec<CFunction>,
}

impl CProgram {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&CFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total number of expression AST nodes in the program (the "AST size"
    /// measure shared with MiniPy: statements count 1 plus their
    /// expressions).
    pub fn ast_size(&self) -> usize {
        fn stmt_size(stmt: &CStmt) -> usize {
            match stmt {
                CStmt::Decl { init, .. } => 1 + init.as_ref().map(Expr::size).unwrap_or(0),
                CStmt::Assign { target, value, .. } => {
                    1 + value.size()
                        + match target {
                            Target::Index(_, idx) => idx.size(),
                            Target::Name(_) => 0,
                        }
                }
                CStmt::If { cond, then_body, else_body, .. } => {
                    1 + cond.size() + block_size(then_body) + block_size(else_body)
                }
                CStmt::While { cond, body, .. } => 1 + cond.size() + block_size(body),
                CStmt::For { init, cond, step, body, .. } => {
                    1 + init.as_deref().map(stmt_size).unwrap_or(0)
                        + cond.as_ref().map(Expr::size).unwrap_or(0)
                        + step.as_deref().map(stmt_size).unwrap_or(0)
                        + block_size(body)
                }
                CStmt::Return { value, .. } => 1 + value.as_ref().map(Expr::size).unwrap_or(0),
                CStmt::Printf { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
                CStmt::ExprStmt { expr, .. } => expr.size(),
                CStmt::Break { .. } | CStmt::Continue { .. } | CStmt::Empty { .. } => 1,
            }
        }
        fn block_size(stmts: &[CStmt]) -> usize {
            stmts.iter().map(stmt_size).sum()
        }
        self.functions.iter().map(|f| 1 + block_size(&f.body)).sum()
    }
}
