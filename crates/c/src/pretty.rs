//! Pretty-printing of MiniC programs and C-syntax rendering of model
//! expressions.
//!
//! Two consumers: feedback messages — a C student should read
//! `d < 0 && m > 10`, not `d < 0 and m > 10` — and the canonical rendering
//! behind the formatting-insensitive structural hash the feedback service
//! keys its result cache on.

use std::fmt::Write as _;

use clara_lang::ast::{Expr, Lit, Target};
use clara_lang::{BinOp, UnOp};

use crate::ast::{CFunction, CProgram, CStmt};

/// Renders a (model or source) expression as C surface syntax.
///
/// Model builtins render as calls (`len(xs)`, `head(it)`, ...) except for
/// `ite(c, a, b)`, which C can express directly as `c ? a : b`. Booleans
/// render as `1`/`0`, `and`/`or`/`not` as `&&`/`||`/`!`, and both division
/// operators as `/` (C division *is* integer division on integers).
pub fn c_expr_to_string(expr: &Expr) -> String {
    render_expr(expr, 0)
}

/// Renders a statement (and its nested blocks) as MiniC source text with the
/// given indentation depth.
pub fn c_stmt_to_string(stmt: &CStmt, indent: usize) -> String {
    let mut out = String::new();
    render_stmt(stmt, indent, &mut out);
    out
}

/// Renders a whole function definition as MiniC source text.
pub fn c_function_to_string(function: &CFunction) -> String {
    let mut out = String::new();
    let params: Vec<String> = function
        .params
        .iter()
        .map(|p| format!("{} {}{}", p.ty.keyword(), p.name, if p.array { "[]" } else { "" }))
        .collect();
    let _ = writeln!(out, "{} {}({}) {{", function.ret.keyword(), function.name, params.join(", "));
    for stmt in &function.body {
        render_stmt(stmt, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Renders a whole program as MiniC source text.
pub fn c_program_to_string(program: &CProgram) -> String {
    let mut out = String::new();
    for (i, function) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&c_function_to_string(function));
    }
    out
}

impl CProgram {
    /// A formatting-insensitive hash of the program: two submissions that
    /// differ only in whitespace, comments, blank lines or redundant
    /// parentheses hash equal, while any structural difference (and any
    /// variable renaming) changes the hash. The MiniC counterpart of
    /// `SourceProgram::structural_hash`; the feedback service keys its
    /// result cache on it.
    pub fn structural_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        c_program_to_string(self).hash(&mut hasher);
        hasher.finish()
    }
}

/// C operator precedence for the shared binary operators; `?:` sits below
/// all of them at level 1.
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 2,
        BinOp::And => 3,
        BinOp::Eq | BinOp::Ne => 4,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 5,
        BinOp::Add | BinOp::Sub => 6,
        BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod => 7,
        // `**` has no C operator; rendered as a pow(...) call instead.
        BinOp::Pow => 8,
    }
}

fn c_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::And => "&&",
        BinOp::Or => "||",
        // Integer division *is* `/` in C; the parser's float-literal
        // heuristic picked the variant, the rendering is the same.
        BinOp::Div | BinOp::FloorDiv => "/",
        other => other.symbol(),
    }
}

fn render_expr(expr: &Expr, parent_prec: u8) -> String {
    match expr {
        Expr::Lit(lit) => render_lit(lit),
        Expr::Var(name) => name.clone(),
        Expr::List(items) | Expr::Tuple(items) => {
            let inner: Vec<String> = items.iter().map(|e| render_expr(e, 0)).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Unary(op, inner) => {
            let rendered = render_expr(inner, 8);
            match op {
                UnOp::Neg => format!("-{rendered}"),
                UnOp::Not => format!("!{rendered}"),
            }
        }
        Expr::Binary(BinOp::Pow, lhs, rhs) => {
            format!("pow({}, {})", render_expr(lhs, 0), render_expr(rhs, 0))
        }
        Expr::Binary(op, lhs, rhs) => {
            let prec = precedence(*op);
            let left = render_expr(lhs, prec);
            let right = render_expr(rhs, prec + 1);
            let text = format!("{left} {} {right}", c_symbol(*op));
            if prec < parent_prec {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Index(base, idx) => {
            format!("{}[{}]", render_expr(base, 9), render_expr(idx, 0))
        }
        Expr::Slice(base, lo, hi) => {
            // No C syntax for slices; keep the bracketed form readable.
            let lo = lo.as_ref().map(|e| render_expr(e, 0)).unwrap_or_default();
            let hi = hi.as_ref().map(|e| render_expr(e, 0)).unwrap_or_default();
            format!("{}[{lo}:{hi}]", render_expr(base, 9))
        }
        Expr::Call(name, args) if name == "ite" && args.len() == 3 => {
            let text = format!(
                "{} ? {} : {}",
                render_expr(&args[0], 2),
                render_expr(&args[1], 0),
                render_expr(&args[2], 1),
            );
            if parent_prec > 1 {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Call(name, args) => {
            let inner: Vec<String> = args.iter().map(|e| render_expr(e, 0)).collect();
            format!("{name}({})", inner.join(", "))
        }
        Expr::Method(recv, name, args) => {
            // No methods in C; render as a free call with the receiver first.
            let mut inner = vec![render_expr(recv, 0)];
            inner.extend(args.iter().map(|e| render_expr(e, 0)));
            format!("{name}({})", inner.join(", "))
        }
    }
}

fn render_lit(lit: &Lit) -> String {
    match lit {
        Lit::Int(v) => v.to_string(),
        Lit::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Lit::Str(v) => format!(
            "\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n").replace('\t', "\\t")
        ),
        Lit::Bool(v) => if *v { "1" } else { "0" }.to_owned(),
        Lit::None => "0".to_owned(),
    }
}

fn render_target(target: &Target) -> String {
    match target {
        Target::Name(name) => name.clone(),
        Target::Index(name, idx) => format!("{name}[{}]", render_expr(idx, 0)),
    }
}

fn render_stmt(stmt: &CStmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match stmt {
        CStmt::Decl { name, ty, init, .. } => match init {
            Some(expr) => {
                let _ = writeln!(out, "{pad}{} {name} = {};", ty.keyword(), render_expr(expr, 0));
            }
            None => {
                let _ = writeln!(out, "{pad}{} {name};", ty.keyword());
            }
        },
        CStmt::Assign { target, op, value, .. } => {
            let op_text = match op {
                Some(op) => format!("{}=", c_symbol(*op)),
                None => "=".to_owned(),
            };
            let _ = writeln!(out, "{pad}{} {op_text} {};", render_target(target), render_expr(value, 0));
        }
        CStmt::If { cond, then_body, else_body, .. } => {
            let _ = writeln!(out, "{pad}if ({}) {{", render_expr(cond, 0));
            render_block(then_body, indent + 1, out);
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else if else_body.len() == 1 && matches!(else_body[0], CStmt::If { .. }) {
                // Collapse `else { if ... }` into `else if ...`.
                let mut nested = String::new();
                render_stmt(&else_body[0], indent, &mut nested);
                let _ = write!(out, "{pad}}} else {}", nested.trim_start());
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                render_block(else_body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
        CStmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while ({}) {{", render_expr(cond, 0));
            render_block(body, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        CStmt::For { init, cond, step, body, .. } => {
            let header_part = |stmt: &Option<Box<CStmt>>| -> String {
                match stmt {
                    Some(stmt) => {
                        let text = c_stmt_to_string(stmt, 0);
                        text.trim_end().trim_end_matches(';').to_owned()
                    }
                    None => String::new(),
                }
            };
            let cond_text = cond.as_ref().map(|e| render_expr(e, 0)).unwrap_or_default();
            let _ = writeln!(out, "{pad}for ({}; {cond_text}; {}) {{", header_part(init), header_part(step));
            render_block(body, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        CStmt::Return { value, .. } => match value {
            Some(expr) => {
                let _ = writeln!(out, "{pad}return {};", render_expr(expr, 0));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
        CStmt::Printf { format, args, .. } => {
            let mut pieces = vec![render_lit(&Lit::Str(format.clone()))];
            pieces.extend(args.iter().map(|e| render_expr(e, 0)));
            let _ = writeln!(out, "{pad}printf({});", pieces.join(", "));
        }
        CStmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{pad}{};", render_expr(expr, 0));
        }
        CStmt::Break { .. } => {
            let _ = writeln!(out, "{pad}break;");
        }
        CStmt::Continue { .. } => {
            let _ = writeln!(out, "{pad}continue;");
        }
        CStmt::Empty { .. } => {
            let _ = writeln!(out, "{pad};");
        }
    }
}

fn render_block(stmts: &[CStmt], indent: usize, out: &mut String) {
    for stmt in stmts {
        render_stmt(stmt, indent, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_c_expression, parse_c_program};

    #[test]
    fn expression_round_trip() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "m % 10",
            "x > 0 && y < 10 || !done",
            "d < 0 ? -d : d",
            "xs[i + 1]",
            "len(xs) - 1",
            "-x",
        ] {
            let expr = parse_c_expression(src).unwrap();
            let printed = c_expr_to_string(&expr);
            let reparsed = parse_c_expression(&printed).unwrap();
            assert_eq!(expr, reparsed, "round-trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn c_specific_spellings() {
        let e = parse_c_expression("a && !b || c").unwrap();
        assert_eq!(c_expr_to_string(&e), "a && !b || c");
        let e = parse_c_expression("m / 10").unwrap();
        assert_eq!(c_expr_to_string(&e), "m / 10");
        let e = parse_c_expression("x > 0 ? 1 : 0").unwrap();
        assert_eq!(c_expr_to_string(&e), "x > 0 ? 1 : 0");
        let e = clara_lang::Expr::ite(
            parse_c_expression("x > y").unwrap(),
            parse_c_expression("x").unwrap(),
            parse_c_expression("y").unwrap(),
        );
        assert_eq!(c_expr_to_string(&e), "x > y ? x : y");
    }

    #[test]
    fn program_round_trip() {
        let src = "\
int fib(int k) {
    int a = 1;
    int n = 1;
    while (a <= k) {
        a = a + 1;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
";
        let program = parse_c_program(src).unwrap();
        let printed = c_program_to_string(&program);
        let reparsed = parse_c_program(&printed).unwrap();
        assert_eq!(program, reparsed);
    }

    #[test]
    fn structural_hash_ignores_formatting_but_not_structure() {
        let base = parse_c_program("int f(int x) { return x + 1; }").unwrap();
        let reformatted =
            parse_c_program("#include <stdio.h>\nint f(int x) {\n    /* c */ return (x + 1);\n}\n").unwrap();
        let renamed = parse_c_program("int f(int y) { return y + 1; }").unwrap();
        let different = parse_c_program("int f(int x) { return 1 + x; }").unwrap();
        assert_eq!(base.structural_hash(), reformatted.structural_hash());
        assert_ne!(base.structural_hash(), renamed.structural_hash());
        assert_ne!(base.structural_hash(), different.structural_hash());
    }
}
