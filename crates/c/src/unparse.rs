//! Un-desugaring of the surface IR back into MiniC source text.
//!
//! The mutation engine of `clara-corpus` rewrites programs at the
//! language-neutral surface-IR level; this module renders the rewritten
//! function back as compilable-looking MiniC so the variant re-parses
//! through [`crate::parser`] like any student submission. It inverts the
//! desugarings of [`crate::lower`]:
//!
//! * the first assignment of each non-parameter variable becomes a
//!   declaration with initialiser (`int s = 0;`); later assignments stay
//!   plain assignments,
//! * `x = store(x, i, e)` becomes `x[i] = e;`,
//! * an [`SurfaceStmt::Output`] piece list becomes one `printf`: literal
//!   pieces concatenate into the format string (`%` doubled), `str(e)`
//!   conversions become `%d` specifiers consuming one argument.
//!
//! Types are reconstructed heuristically — MiniC erases them during
//! lowering (declarations are modelled as assignments), so the renderer
//! declares `float` where a float literal appears in the initialiser and
//! `int` otherwise, and marks parameters used as index bases as arrays.
//! The heuristic is exact for the integer corpus problems; it only affects
//! spelling, never model semantics (the lowering ignores declared types).

use std::collections::HashSet;

use clara_lang::ast::{Expr, Lit, Target};
use clara_model::surface::{SurfaceFunction, SurfaceStmt};
use clara_model::LowerError;

use crate::ast::{CFunction, CParam, CProgram, CStmt, CType};
use crate::pretty::c_program_to_string;

/// Renders a surface function as MiniC source text.
///
/// # Errors
///
/// Returns a [`LowerError`] when the function contains a construct with no
/// MiniC spelling (a `ForEach` loop, or output pieces that cannot be folded
/// into one `printf`).
pub fn minic_source(function: &SurfaceFunction) -> Result<String, LowerError> {
    let function = minic_function(function)?;
    Ok(c_program_to_string(&CProgram { functions: vec![function] }))
}

/// Un-desugars a surface function into a MiniC AST function.
///
/// # Errors
///
/// See [`minic_source`].
pub fn minic_function(function: &SurfaceFunction) -> Result<CFunction, LowerError> {
    let mut array_params = HashSet::new();
    collect_indexed_names(&function.body, &mut array_params);
    let params: Vec<CParam> = function
        .params
        .iter()
        .map(|name| CParam { name: name.clone(), ty: CType::Int, array: array_params.contains(name) })
        .collect();
    let mut declared: HashSet<String> = function.params.iter().cloned().collect();
    let body = unparse_stmts(&function.body, &mut declared)?;
    Ok(CFunction {
        name: function.name.clone(),
        ret: return_type(&function.body),
        params,
        body,
        line: function.line,
    })
}

/// `int` unless every `return` in the function is the bare-`return`
/// encoding (a `None` literal), in which case the function is `void`.
fn return_type(body: &[SurfaceStmt]) -> CType {
    fn any_value_return(body: &[SurfaceStmt]) -> bool {
        body.iter().any(|stmt| match stmt {
            SurfaceStmt::Return { value, .. } => *value != Expr::Lit(Lit::None),
            SurfaceStmt::If { then_body, else_body, .. } => {
                any_value_return(then_body) || any_value_return(else_body)
            }
            SurfaceStmt::While { body, .. } | SurfaceStmt::ForEach { body, .. } => any_value_return(body),
            _ => false,
        })
    }
    if any_value_return(body) {
        CType::Int
    } else {
        CType::Void
    }
}

fn collect_indexed_names(body: &[SurfaceStmt], out: &mut HashSet<String>) {
    fn walk_expr(expr: &Expr, out: &mut HashSet<String>) {
        if let Expr::Index(base, _) = expr {
            if let Expr::Var(name) = base.as_ref() {
                out.insert(name.clone());
            }
        }
        match expr {
            Expr::Lit(_) | Expr::Var(_) => {}
            Expr::List(items) | Expr::Tuple(items) => items.iter().for_each(|e| walk_expr(e, out)),
            Expr::Unary(_, inner) => walk_expr(inner, out),
            Expr::Binary(_, lhs, rhs) => {
                walk_expr(lhs, out);
                walk_expr(rhs, out);
            }
            Expr::Index(base, idx) => {
                walk_expr(base, out);
                walk_expr(idx, out);
            }
            Expr::Slice(base, lo, hi) => {
                walk_expr(base, out);
                if let Some(lo) = lo {
                    walk_expr(lo, out);
                }
                if let Some(hi) = hi {
                    walk_expr(hi, out);
                }
            }
            Expr::Call(_, args) => args.iter().for_each(|e| walk_expr(e, out)),
            Expr::Method(recv, _, args) => {
                walk_expr(recv, out);
                args.iter().for_each(|e| walk_expr(e, out));
            }
        }
    }
    for stmt in body {
        match stmt {
            SurfaceStmt::Assign { value, .. } => walk_expr(value, out),
            SurfaceStmt::If { cond, then_body, else_body, .. } => {
                walk_expr(cond, out);
                collect_indexed_names(then_body, out);
                collect_indexed_names(else_body, out);
            }
            SurfaceStmt::While { cond, body, .. } => {
                walk_expr(cond, out);
                collect_indexed_names(body, out);
            }
            SurfaceStmt::ForEach { iter, body, .. } => {
                walk_expr(iter, out);
                collect_indexed_names(body, out);
            }
            SurfaceStmt::Return { value, .. } => walk_expr(value, out),
            SurfaceStmt::Output { pieces, .. } => pieces.iter().for_each(|e| walk_expr(e, out)),
            _ => {}
        }
    }
}

fn contains_float_literal(expr: &Expr) -> bool {
    match expr {
        Expr::Lit(Lit::Float(_)) => true,
        Expr::Lit(_) | Expr::Var(_) => false,
        Expr::List(items) | Expr::Tuple(items) => items.iter().any(contains_float_literal),
        Expr::Unary(_, inner) => contains_float_literal(inner),
        Expr::Binary(_, lhs, rhs) => contains_float_literal(lhs) || contains_float_literal(rhs),
        Expr::Index(base, idx) => contains_float_literal(base) || contains_float_literal(idx),
        Expr::Slice(base, lo, hi) => {
            contains_float_literal(base)
                || lo.as_deref().is_some_and(contains_float_literal)
                || hi.as_deref().is_some_and(contains_float_literal)
        }
        Expr::Call(_, args) => args.iter().any(contains_float_literal),
        Expr::Method(recv, _, args) => {
            contains_float_literal(recv) || args.iter().any(contains_float_literal)
        }
    }
}

fn unparse_stmts(stmts: &[SurfaceStmt], declared: &mut HashSet<String>) -> Result<Vec<CStmt>, LowerError> {
    stmts.iter().map(|stmt| unparse_stmt(stmt, declared)).collect()
}

fn unparse_stmt(stmt: &SurfaceStmt, declared: &mut HashSet<String>) -> Result<CStmt, LowerError> {
    Ok(match stmt {
        SurfaceStmt::Assign { var, value, line } => {
            // `x = store(x, i, e)` is the desugared index assignment.
            if let Expr::Call(name, args) = value {
                if name == "store" && args.len() == 3 && args[0] == Expr::var(var.as_str()) {
                    return Ok(CStmt::Assign {
                        target: Target::Index(var.clone(), args[1].clone()),
                        op: None,
                        value: args[2].clone(),
                        line: *line,
                    });
                }
            }
            if declared.insert(var.clone()) {
                let ty = if contains_float_literal(value) { CType::Float } else { CType::Int };
                CStmt::Decl { name: var.clone(), ty, init: Some(value.clone()), line: *line }
            } else {
                CStmt::Assign {
                    target: Target::Name(var.clone()),
                    op: None,
                    value: value.clone(),
                    line: *line,
                }
            }
        }
        SurfaceStmt::If { cond, then_body, else_body, line } => CStmt::If {
            cond: cond.clone(),
            then_body: unparse_stmts(then_body, declared)?,
            else_body: unparse_stmts(else_body, declared)?,
            line: *line,
        },
        SurfaceStmt::While { cond, body, line } => {
            CStmt::While { cond: cond.clone(), body: unparse_stmts(body, declared)?, line: *line }
        }
        SurfaceStmt::ForEach { line, .. } => {
            return Err(LowerError::new(*line, "MiniC has no iterator-style for loop"));
        }
        SurfaceStmt::Return { value, line } => {
            let value = if *value == Expr::Lit(Lit::None) { None } else { Some(value.clone()) };
            CStmt::Return { value, line: *line }
        }
        SurfaceStmt::Output { pieces, line } => printf_stmt(pieces, *line)?,
        SurfaceStmt::Break { line } => CStmt::Break { line: *line },
        SurfaceStmt::Continue { line } => CStmt::Continue { line: *line },
        SurfaceStmt::Nop { line } => CStmt::Empty { line: *line },
    })
}

/// Folds an output piece list back into one `printf`: literal pieces extend
/// the format string (with `%` escaped as `%%`), `str(e)` conversions become
/// `%d` specifiers. Mirrors [`crate::lower`]'s `printf_pieces`.
fn printf_stmt(pieces: &[Expr], line: u32) -> Result<CStmt, LowerError> {
    let mut format = String::new();
    let mut args = Vec::new();
    for piece in pieces {
        match piece {
            Expr::Lit(Lit::Str(text)) => format.push_str(&text.replace('%', "%%")),
            Expr::Call(name, inner) if name == "str" && inner.len() == 1 => {
                format.push_str("%d");
                args.push(inner[0].clone());
            }
            other => {
                return Err(LowerError::new(line, format!("output piece has no printf spelling: {other:?}")));
            }
        }
    }
    Ok(CStmt::Printf { format, args, line })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::surface_function;
    use crate::parser::parse_c_program;

    /// Parsing, desugaring to the surface IR and rendering back must
    /// preserve the canonical (pretty-printed) structure, modulo the
    /// documented normalisations (`for` becomes `while`, bare declarations
    /// become `;`).
    #[test]
    fn desugar_then_unparse_round_trips_the_corpus_shapes() {
        for src in [
            "int fib(int k) {\n    int a = 1;\n    int b = 1;\n    int n = 1;\n    while (b <= k) {\n        int c = a + b;\n        a = b;\n        b = c;\n        n = n + 1;\n    }\n    printf(\"%d\\n\", n);\n    return 0;\n}\n",
            "int special(int n) {\n    int s = 0;\n    int m = n;\n    while (m > 0) {\n        int d = m % 10;\n        s = s + d * d * d;\n        m = m / 10;\n    }\n    if (s == n) {\n        printf(\"YES\\n\");\n    } else {\n        printf(\"NO\\n\");\n    }\n    return 0;\n}\n",
        ] {
            let parsed = parse_c_program(src).unwrap();
            let surface = surface_function(&parsed.functions[0]).unwrap();
            let rendered = minic_source(&surface).unwrap();
            let reparsed = parse_c_program(&rendered).expect("rendered source re-parses");
            assert_eq!(
                c_program_to_string(&reparsed),
                c_program_to_string(&parsed),
                "round trip changed structure for:\n{src}\n->\n{rendered}"
            );
        }
    }

    #[test]
    fn for_loops_render_in_their_desugared_while_form() {
        let src = "\
int revdiff(int n) {
    int m = n;
    int r = 0;
    for (; m > 0; m = m / 10) {
        r = r * 10 + m % 10;
    }
    printf(\"%d\\n\", n - r);
    return 0;
}
";
        let parsed = parse_c_program(src).unwrap();
        let surface = surface_function(&parsed.functions[0]).unwrap();
        let rendered = minic_source(&surface).unwrap();
        assert!(rendered.contains("while (m > 0)"), "{rendered}");
        let reparsed = parse_c_program(&rendered).unwrap();
        // The rendered form is its own fixpoint: pretty -> parse -> pretty is
        // stable.
        assert_eq!(c_program_to_string(&reparsed), rendered);
    }

    #[test]
    fn array_params_percent_escapes_and_index_stores_render() {
        let src = "\
void f(int xs[], int n) {
    xs[0] = n;
    printf(\"100%% of %d\\n\", xs[0]);
}
";
        let parsed = parse_c_program(src).unwrap();
        let surface = surface_function(&parsed.functions[0]).unwrap();
        let rendered = minic_source(&surface).unwrap();
        assert!(rendered.contains("int xs[]"), "{rendered}");
        assert!(rendered.contains("xs[0] = n;"), "{rendered}");
        assert!(rendered.contains("100%%"), "{rendered}");
        assert!(rendered.starts_with("void f"), "{rendered}");
        let reparsed = parse_c_program(&rendered).unwrap();
        assert_eq!(c_program_to_string(&reparsed), rendered);
    }
}
