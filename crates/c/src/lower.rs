//! Desugaring of MiniC into the language-neutral surface IR.
//!
//! MiniC statements map onto the same surface statements the MiniPy frontend
//! uses, so the [`ModelBuilder`] produces structurally identical model
//! programs for structurally identical algorithms — the property the
//! cross-language parity tests assert:
//!
//! * declarations with an initialiser become assignments, bare declarations
//!   become `Nop`s (reads before the first write evaluate to `⊥`, matching
//!   C's undefined-before-initialisation),
//! * `x op= e`, `x++`, `a[i] = e` desugar exactly like their MiniPy
//!   counterparts (`store` for index writes),
//! * `for (init; cond; step)` is C sugar for `init; while (cond) { body;
//!   step; }` — a `continue` directly inside such a body would skip the
//!   step C still executes, so the desugaring duplicates the step
//!   immediately before each `continue` (a `continue` belonging to a
//!   nested loop is left alone),
//! * `printf(fmt, args)` splits the format string into literal chunks and
//!   `%`-conversions, becoming one `Output` statement.

use clara_lang::ast::{Expr, Lit, Target};
use clara_model::builder::ModelBuilder;
use clara_model::surface::{SurfaceFunction, SurfaceStmt};
use clara_model::{LowerError, Program};

use crate::ast::{CFunction, CProgram, CStmt};

/// Lowers the entry function of a parsed MiniC program into the Clara model.
///
/// # Errors
///
/// Returns a [`LowerError`] when the entry function is missing or the
/// program uses a construct the model does not support (helper functions,
/// `break` under nested loops, ...).
pub fn lower_entry(program: &CProgram, entry: &str) -> Result<Program, LowerError> {
    let function = program
        .function(entry)
        .ok_or_else(|| LowerError::new(1, format!("entry function `{entry}` is not defined")))?;
    if program.functions.len() > 1 {
        return Err(LowerError::new(
            program.functions[1].line,
            "helper function definitions are not supported by the program model",
        ));
    }
    lower_function(function)
}

/// Lowers a single MiniC function into the Clara model.
///
/// # Errors
///
/// See [`lower_entry`].
pub fn lower_function(function: &CFunction) -> Result<Program, LowerError> {
    ModelBuilder::build(&surface_function(function)?)
}

/// Desugars a MiniC function into the language-neutral surface IR.
///
/// # Errors
///
/// Returns a [`LowerError`] for MiniC constructs without a surface-IR
/// meaning (unsupported printf conversions, format/argument mismatches).
pub fn surface_function(function: &CFunction) -> Result<SurfaceFunction, LowerError> {
    Ok(SurfaceFunction {
        name: function.name.clone(),
        params: function.param_names(),
        body: surface_stmts(&function.body)?,
        line: function.line,
    })
}

fn surface_stmts(stmts: &[CStmt]) -> Result<Vec<SurfaceStmt>, LowerError> {
    let mut out = Vec::new();
    for stmt in stmts {
        surface_stmt(stmt, &mut out)?;
    }
    Ok(out)
}

fn surface_stmt(stmt: &CStmt, out: &mut Vec<SurfaceStmt>) -> Result<(), LowerError> {
    match stmt {
        CStmt::Decl { name, init, line, .. } => match init {
            Some(expr) => {
                out.push(SurfaceStmt::Assign { var: name.clone(), value: expr.clone(), line: *line });
            }
            None => out.push(SurfaceStmt::Nop { line: *line }),
        },
        CStmt::Assign { target, op, value, line } => out.push(assignment(target, *op, value, *line)),
        CStmt::If { cond, then_body, else_body, line } => out.push(SurfaceStmt::If {
            cond: cond.clone(),
            then_body: surface_stmts(then_body)?,
            else_body: surface_stmts(else_body)?,
            line: *line,
        }),
        CStmt::While { cond, body, line } => {
            out.push(SurfaceStmt::While { cond: cond.clone(), body: surface_stmts(body)?, line: *line })
        }
        CStmt::For { init, cond, step, body, line } => {
            if let Some(init) = init {
                surface_stmt(init, out)?;
            }
            let mut loop_body = surface_stmts(body)?;
            if let Some(step) = step {
                let mut step_surface = Vec::new();
                surface_stmt(step, &mut step_surface)?;
                // C's `continue` jumps to the step, the model's `continue`
                // jumps to the condition — duplicating the step before each
                // direct `continue` makes the two agree.
                prefix_step_before_continues(&mut loop_body, &step_surface);
                loop_body.extend(step_surface);
            }
            let cond = cond.clone().unwrap_or(Expr::Lit(Lit::Bool(true)));
            out.push(SurfaceStmt::While { cond, body: loop_body, line: *line });
        }
        CStmt::Return { value, line } => {
            let value = value.clone().unwrap_or(Expr::Lit(Lit::None));
            out.push(SurfaceStmt::Return { value, line: *line });
        }
        CStmt::Printf { format, args, line } => {
            out.push(SurfaceStmt::Output { pieces: printf_pieces(format, args, *line)?, line: *line });
        }
        CStmt::ExprStmt { line, .. } | CStmt::Empty { line } => {
            // No observable effect in the model (runtime errors of dropped
            // calls are outside the MiniC subset).
            out.push(SurfaceStmt::Nop { line: *line });
        }
        CStmt::Break { line } => out.push(SurfaceStmt::Break { line: *line }),
        CStmt::Continue { line } => out.push(SurfaceStmt::Continue { line: *line }),
    }
    Ok(())
}

fn assignment(target: &Target, op: Option<clara_lang::BinOp>, value: &Expr, line: u32) -> SurfaceStmt {
    match target {
        Target::Name(name) => {
            let rhs = match op {
                Some(binop) => Expr::bin(binop, Expr::var(name.clone()), value.clone()),
                None => value.clone(),
            };
            SurfaceStmt::Assign { var: name.clone(), value: rhs, line }
        }
        Target::Index(name, index) => {
            let stored = match op {
                Some(binop) => Expr::bin(
                    binop,
                    Expr::Index(Box::new(Expr::var(name.clone())), Box::new(index.clone())),
                    value.clone(),
                ),
                None => value.clone(),
            };
            let store = Expr::call("store", vec![Expr::var(name.clone()), index.clone(), stored]);
            SurfaceStmt::Assign { var: name.clone(), value: store, line }
        }
    }
}

/// Splits a printf format string into `Output` pieces: literal chunks stay
/// literal, `%d`/`%i`/`%f`/`%g`/`%s` consume one argument each (as `str(arg)`
/// — formatting is `str`-style, self-consistent across the whole pipeline),
/// and `%%` is a literal percent sign.
fn printf_pieces(format: &str, args: &[Expr], line: u32) -> Result<Vec<Expr>, LowerError> {
    let mut pieces = Vec::new();
    let mut literal = String::new();
    let mut remaining = args.iter();
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            literal.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => literal.push('%'),
            Some(spec @ ('d' | 'i' | 'f' | 'g' | 's')) => {
                let arg = remaining.next().ok_or_else(|| {
                    LowerError::new(
                        line,
                        format!("printf format has more conversions than arguments (%{spec})"),
                    )
                })?;
                if !literal.is_empty() {
                    pieces.push(Expr::str(std::mem::take(&mut literal)));
                }
                pieces.push(Expr::call("str", vec![arg.clone()]));
            }
            Some(other) => {
                return Err(LowerError::new(line, format!("unsupported printf conversion `%{other}`")));
            }
            None => {
                return Err(LowerError::new(line, "printf format ends in a bare `%`"));
            }
        }
    }
    if remaining.next().is_some() {
        return Err(LowerError::new(line, "printf has more arguments than format conversions"));
    }
    if !literal.is_empty() {
        pieces.push(Expr::str(literal));
    }
    Ok(pieces)
}

/// Inserts a copy of the desugared `for` step immediately before every
/// `continue` that belongs to this loop (descending into branches but not
/// into nested loops, whose `continue`s are their own). The copies are
/// re-anchored at the `continue`'s source line, so feedback about the
/// duplicated update points at the `continue` the student wrote.
fn prefix_step_before_continues(stmts: &mut Vec<SurfaceStmt>, step: &[SurfaceStmt]) {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            SurfaceStmt::Continue { line } => {
                let at = *line;
                let copies: Vec<SurfaceStmt> = step.iter().cloned().map(|s| reanchor(s, at)).collect();
                let inserted = copies.len();
                stmts.splice(i..i, copies);
                i += inserted + 1;
            }
            SurfaceStmt::If { then_body, else_body, .. } => {
                prefix_step_before_continues(then_body, step);
                prefix_step_before_continues(else_body, step);
                i += 1;
            }
            // A continue inside a nested loop belongs to that loop.
            _ => i += 1,
        }
    }
}

fn reanchor(stmt: SurfaceStmt, line: u32) -> SurfaceStmt {
    match stmt {
        SurfaceStmt::Assign { var, value, .. } => SurfaceStmt::Assign { var, value, line },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_c_program;
    use clara_lang::Value;
    use clara_model::{execute, Fuel, StructSig, TraceStatus};

    const FIB_C: &str = "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b <= k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
";

    #[test]
    fn fib_lowers_and_runs() {
        let program = parse_c_program(FIB_C).unwrap();
        let model = lower_entry(&program, "fib").unwrap();
        assert_eq!(StructSig::sequence_key(&model.signature), "BL(B)B");
        let trace = execute(&model, &[Value::Int(20)], Fuel::default());
        assert_eq!(trace.status, TraceStatus::Completed);
        assert_eq!(trace.output(), "7\n");
    }

    #[test]
    fn for_loops_desugar_to_while_with_trailing_step() {
        let src = "\
void count(int n) {
    int i;
    for (i = 0; i < n; i++) {
        printf(\"%d\\n\", i);
    }
}
";
        let program = parse_c_program(src).unwrap();
        let model = lower_entry(&program, "count").unwrap();
        assert_eq!(StructSig::sequence_key(&model.signature), "BL(B)B");
        let trace = execute(&model, &[Value::Int(3)], Fuel::default());
        assert_eq!(trace.output(), "0\n1\n2\n");
    }

    #[test]
    fn continue_in_for_duplicates_the_step() {
        // `continue` in a C `for` jumps to the *step*; the desugaring must
        // duplicate `i++` before the `continue` so the loop still advances.
        let src = "\
void f(int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (i == 2) {
            continue;
        }
        printf(\"%d\\n\", i);
    }
}
";
        let program = parse_c_program(src).unwrap();
        let model = lower_entry(&program, "f").unwrap();
        let trace = execute(&model, &[Value::Int(5)], Fuel::default());
        assert_eq!(trace.status, TraceStatus::Completed, "loop must not hang on continue");
        assert_eq!(trace.output(), "0\n1\n3\n4\n");
    }

    #[test]
    fn continue_in_for_is_trace_equivalent_to_the_hand_desugared_while() {
        // The ROADMAP's reference desugaring: duplicate the step expression
        // before each `continue` of the equivalent `while` form. Both
        // programs must produce identical traces on every input.
        let with_for = "\
int f(int n) {
    int skipped = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        if (i % 3 == 0) {
            skipped = skipped + 1;
            continue;
        }
        printf(\"%d\\n\", i);
    }
    return skipped;
}
";
        let hand_desugared = "\
int f(int n) {
    int skipped = 0;
    int i = 0;
    while (i < n) {
        if (i % 3 == 0) {
            skipped = skipped + 1;
            i = i + 1;
            continue;
        }
        printf(\"%d\\n\", i);
        i = i + 1;
    }
    return skipped;
}
";
        let for_model = lower_entry(&parse_c_program(with_for).unwrap(), "f").unwrap();
        let while_model = lower_entry(&parse_c_program(hand_desugared).unwrap(), "f").unwrap();
        assert_eq!(
            StructSig::sequence_key(&for_model.signature),
            StructSig::sequence_key(&while_model.signature),
            "desugared control flow must match the hand-written while form"
        );
        for n in 0..10 {
            let a = execute(&for_model, &[Value::Int(n)], Fuel::default());
            let b = execute(&while_model, &[Value::Int(n)], Fuel::default());
            assert_eq!(a.status, TraceStatus::Completed, "n={n}");
            assert_eq!(a.status, b.status, "n={n}");
            assert_eq!(a.output(), b.output(), "n={n}");
            assert_eq!(a.return_value(), b.return_value(), "n={n}");
        }
    }

    #[test]
    fn continue_in_a_nested_while_keeps_the_outer_for_step_single() {
        // The continue belongs to the inner while; the for step must not be
        // duplicated into the inner loop. (The model rejects break/continue
        // under nested loops only when the *same* body contains both, so the
        // inner loop here is continue-free from the for's point of view.)
        let src = "\
int f(int n) {
    int total = 0;
    int i;
    for (i = 0; i < n; i++) {
        int j = 0;
        while (j < i) {
            j = j + 1;
            if (j == 1) {
                continue;
            }
            total = total + 1;
        }
    }
    return total;
}
";
        let model = lower_entry(&parse_c_program(src).unwrap(), "f").unwrap();
        let trace = execute(&model, &[Value::Int(4)], Fuel::default());
        assert_eq!(trace.status, TraceStatus::Completed);
        // i=0 -> 0, i=1 -> j=1 skipped, i=2 -> j=2, i=3 -> j∈{2,3}: total 3.
        // If the outer step leaked into the inner continue, i would advance
        // inside the inner loop and the count would differ.
        assert_eq!(trace.return_value(), Value::Int(3));
    }

    #[test]
    fn printf_formats_split_into_pieces() {
        let src = "\
void f(int a, int b) {
    printf(\"sum of %d%% and %d: %d\\n\", a, b, a + b);
}
";
        let program = parse_c_program(src).unwrap();
        let model = lower_entry(&program, "f").unwrap();
        let trace = execute(&model, &[Value::Int(2), Value::Int(3)], Fuel::default());
        assert_eq!(trace.output(), "sum of 2% and 3: 5\n");
        for (bad, needle) in [
            ("void f(int a) { printf(\"%d %d\\n\", a); }", "more conversions"),
            ("void f(int a) { printf(\"%d\\n\", a, a); }", "more arguments"),
            ("void f(int a) { printf(\"%q\\n\", a); }", "unsupported printf conversion"),
        ] {
            let program = parse_c_program(bad).unwrap();
            let err = lower_entry(&program, "f").unwrap_err();
            assert!(err.message.contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn helper_functions_are_unsupported() {
        let src = "\
int helper(int x) {
    return x;
}

int f(int x) {
    return helper(x);
}
";
        let program = parse_c_program(src).unwrap();
        let err = lower_entry(&program, "f").unwrap_err();
        assert!(err.message.contains("helper function"), "{err}");
        assert!(lower_entry(&parse_c_program("int g(int x) { return x; }").unwrap(), "f").is_err());
    }

    #[test]
    fn break_and_early_return_are_modelled() {
        let src = "\
int first_multiple(int n, int limit) {
    int i = 1;
    int found = 0;
    while (i <= limit) {
        if (i % n == 0) {
            found = i;
            break;
        }
        i = i + 1;
    }
    return found;
}
";
        let program = parse_c_program(src).unwrap();
        let model = lower_entry(&program, "first_multiple").unwrap();
        let trace = execute(&model, &[Value::Int(7), Value::Int(100)], Fuel::default());
        assert_eq!(trace.return_value(), Value::Int(7));
    }

    #[test]
    fn array_reads_and_index_arithmetic_work() {
        let src = "\
float sum(float xs[], int n) {
    float total = 0.0;
    int i = 0;
    while (i < n) {
        total = total + xs[i];
        i = i + 1;
    }
    return total;
}
";
        let program = parse_c_program(src).unwrap();
        let model = lower_entry(&program, "sum").unwrap();
        let xs = Value::list(vec![Value::Float(1.5), Value::Float(2.5)]);
        let trace = execute(&model, &[xs, Value::Int(2)], Fuel::default());
        assert_eq!(trace.return_value(), Value::Float(4.0));
    }
}
