//! # clara-bench — reproduction harness for the paper's evaluation
//!
//! This crate regenerates every table and figure of §6 of the paper on the
//! synthetic corpus (`clara-corpus`):
//!
//! * `table1` — the MOOC evaluation and AutoGrader comparison (Table 1),
//! * `fig6` — the histogram of relative repair sizes (Fig. 6),
//! * `fig7` — repair-size comparison against AutoGrader (Fig. 7a/7b),
//! * `table2` — the user-study performance columns (Table 2),
//! * `quality` — the automated stand-in for the manual repair-quality
//!   inspection of §6.2 (3).
//!
//! The binaries print the same rows/series the paper reports and also write
//! machine-readable JSON next to their textual output. Absolute numbers are
//! not expected to match the paper (the corpus is synthetic and hardware
//! differs); the *shape* — who wins, by roughly what factor, where the mass
//! of each distribution lies — is the reproduction target. See
//! `EXPERIMENTS.md` for the recorded comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

use serde::Serialize;

use clara_autograder::{AutoGrader, AutoGraderConfig, ErrorModel};
use clara_core::{AnalyzedProgram, Clara, ClaraConfig, Feedback, RepairFailure};
use clara_corpus::{generate_dataset, AttemptKind, Dataset, DatasetConfig, Problem};
use clara_lang::parse_program;

/// Experiment scale: the synthetic corpus sizes are the paper's submission
/// counts multiplied by this factor (clamped to sane minima so that every
/// problem still has a meaningful corpus).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier applied to the paper's per-problem counts.
    pub factor: f64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { factor: 0.02 }
    }
}

impl Scale {
    /// Reads the scale from the `CLARA_SCALE` environment variable, falling
    /// back to the default (2% of the paper's corpus sizes).
    pub fn from_env() -> Self {
        match std::env::var("CLARA_SCALE").ok().and_then(|s| s.parse::<f64>().ok()) {
            Some(factor) if factor > 0.0 => Scale { factor },
            _ => Scale::default(),
        }
    }

    /// Scales a paper count, keeping at least `min`.
    pub fn apply(&self, paper_count: usize, min: usize) -> usize {
        ((paper_count as f64 * self.factor).round() as usize).max(min)
    }
}

/// Invocation mode of the reproduction binaries.
///
/// Every binary accepts `--smoke` (or `CLARA_SMOKE=1` in the environment):
/// a fast sanity path that runs the first problem of the family on a tiny
/// corpus, finishes in seconds, and mirrors the JSON report to stdout and a
/// `BENCH_<name>.json` file in the working directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMode {
    /// Whether the tiny smoke subset was requested.
    pub smoke: bool,
    /// Whether the fault-injection chaos scenario was requested
    /// (`--chaos` / `CLARA_CHAOS`; honoured by `serve_throughput`).
    pub chaos: bool,
}

impl RunMode {
    /// Reads `--smoke` from the command line or `CLARA_SMOKE` from the
    /// environment (any value except empty/`0` enables it); likewise
    /// `--chaos` / `CLARA_CHAOS` for the fault-injection scenario.
    pub fn from_env_and_args() -> Self {
        let flag = |arg: &str, var: &str| {
            std::env::args().any(|a| a == arg) || std::env::var(var).is_ok_and(|v| !v.is_empty() && v != "0")
        };
        RunMode { smoke: flag("--smoke", "CLARA_SMOKE"), chaos: flag("--chaos", "CLARA_CHAOS") }
    }

    /// The corpus scale for this mode (smoke keeps the default).
    pub fn scale(self) -> Scale {
        if self.smoke {
            Scale::default()
        } else {
            Scale::from_env()
        }
    }

    /// Restricts a problem list to the smoke subset (its first problem).
    pub fn problems(self, all: Vec<Problem>) -> Vec<Problem> {
        if self.smoke {
            all.into_iter().take(1).collect()
        } else {
            all
        }
    }

    /// Human-readable description of the corpus this mode builds, for report
    /// headers (the scale factor is not used in smoke mode, so printing it
    /// there would be misleading).
    pub fn corpus_label(self, scale: Scale) -> String {
        if self.smoke {
            "smoke subset: first problem, 10 correct + 5 incorrect".to_owned()
        } else {
            format!("corpus scale factor {}", scale.factor)
        }
    }

    /// Builds the dataset for `problem` under this mode: a tiny fixed-size
    /// corpus in smoke mode, the paper-derived scaled corpus otherwise.
    pub fn dataset(self, problem: &Problem, scale: Scale, seed: u64) -> Dataset {
        if self.smoke {
            generate_dataset(
                problem,
                DatasetConfig { correct_count: 10, incorrect_count: 5, seed, ..DatasetConfig::default() },
            )
        } else {
            build_dataset(problem, scale, seed)
        }
    }
}

/// The paper's per-problem submission counts (Table 1 / Table 2), used to
/// derive the synthetic corpus sizes.
pub fn paper_counts(problem: &str) -> (usize, usize) {
    match problem {
        "derivatives" => (1472, 481),
        "oddTuples" => (9001, 3584),
        "polynomials" => (2500, 228),
        "fibonacci" => (596, 572),
        "special_number" => (417, 121),
        "reverse_difference" => (388, 103),
        "factorial_interval" => (435, 234),
        "trapezoid" => (322, 143),
        "rhombus" => (302, 525),
        _ => (300, 100),
    }
}

/// Builds the synthetic dataset for a problem at the given scale.
pub fn build_dataset(problem: &Problem, scale: Scale, seed: u64) -> Dataset {
    let (paper_correct, paper_incorrect) = paper_counts(problem.name);
    let config = DatasetConfig {
        correct_count: scale.apply(paper_correct, 25),
        incorrect_count: scale.apply(paper_incorrect, 12),
        seed,
        ..DatasetConfig::default()
    };
    generate_dataset(problem, config)
}

/// Why Clara produced no repair for an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FailureReason {
    /// The attempt does not parse or uses unsupported constructs.
    Unsupported,
    /// No correct solution with the same control flow exists.
    NoMatchingControlFlow,
    /// The solver budget was exhausted.
    Budget,
}

/// Per-attempt result of running Clara.
#[derive(Debug, Clone, Serialize)]
pub struct ClaraAttemptResult {
    /// Attempt identifier within the dataset.
    pub id: usize,
    /// How the attempt was generated (seed/variant/mutant/empty/unsupported).
    pub kind: String,
    /// Number of injected faults.
    pub fault_count: usize,
    /// Whether a repair was produced.
    pub repaired: bool,
    /// Why no repair was produced (when `repaired` is false).
    pub failure: Option<FailureReason>,
    /// Total repair cost (tree edit distance).
    pub cost: Option<i64>,
    /// Relative repair size (cost / AST size), `None` if not repaired;
    /// `f64::INFINITY` for empty attempts.
    pub relative_size: Option<f64>,
    /// Number of modified expressions.
    pub modified_expressions: Option<usize>,
    /// Whether the repair used expressions from at least two different
    /// member solutions of the winning cluster.
    pub verified: Option<bool>,
    /// Whether the feedback shown would be concrete repair feedback (as
    /// opposed to the generic strategy fallback).
    pub repair_feedback: bool,
    /// Wall-clock repair time.
    pub seconds: f64,
}

/// Per-attempt result of running the AutoGrader baseline.
#[derive(Debug, Clone, Serialize)]
pub struct AutoGraderAttemptResult {
    /// Attempt identifier within the dataset.
    pub id: usize,
    /// Whether a repair was found.
    pub repaired: bool,
    /// Number of modified expressions.
    pub modified_expressions: Option<usize>,
    /// Wall-clock repair time.
    pub seconds: f64,
}

/// The result of running Clara over a whole dataset.
#[derive(Debug, Clone, Serialize)]
pub struct ClaraRun {
    /// Problem name.
    pub problem: String,
    /// Number of correct solutions ingested.
    pub correct: usize,
    /// Number of correct solutions that could be analysed (parsed + lowered).
    pub usable_correct: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Median lines of code over all attempts.
    pub median_loc: usize,
    /// Median AST size over all attempts.
    pub median_ast: usize,
    /// Per-attempt repair results.
    pub attempts: Vec<ClaraAttemptResult>,
    /// Time spent clustering.
    pub clustering_seconds: f64,
}

impl ClaraRun {
    /// Number of repaired attempts.
    pub fn repaired_count(&self) -> usize {
        self.attempts.iter().filter(|a| a.repaired).count()
    }

    /// Fraction of repaired attempts.
    pub fn repaired_rate(&self) -> f64 {
        if self.attempts.is_empty() {
            0.0
        } else {
            self.repaired_count() as f64 / self.attempts.len() as f64
        }
    }

    /// Average repair time in seconds.
    pub fn average_seconds(&self) -> f64 {
        average(self.attempts.iter().map(|a| a.seconds))
    }

    /// Median repair time in seconds.
    pub fn median_seconds(&self) -> f64 {
        median_f64(self.attempts.iter().map(|a| a.seconds).collect())
    }
}

/// Runs Clara (clustering + repair) over a dataset.
pub fn run_clara(dataset: &Dataset) -> ClaraRun {
    let problem = &dataset.problem;
    let mut clara = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());

    let clustering_start = Instant::now();
    let mut usable_correct = 0usize;
    for attempt in &dataset.correct {
        if clara.add_correct_solution(&attempt.source).is_ok() {
            usable_correct += 1;
        }
    }
    let clustering_seconds = clustering_start.elapsed().as_secs_f64();

    let mut results = Vec::with_capacity(dataset.incorrect.len());
    for attempt in &dataset.incorrect {
        let start = Instant::now();
        let parsed = parse_program(&attempt.source);
        let (repaired, failure, cost, relative, modified, verified, repair_feedback) = match parsed {
            Err(_) => (false, Some(FailureReason::Unsupported), None, None, None, None, false),
            Ok(source) => {
                let ast_size = if matches!(attempt.kind, AttemptKind::Empty) { 0 } else { source.ast_size() };
                match clara.repair_source(&attempt.source) {
                    Err(_) => (false, Some(FailureReason::Unsupported), None, None, None, None, false),
                    Ok(outcome) => match outcome.result.best {
                        Some(repair) => {
                            let relative = repair.relative_size(ast_size);
                            let feedback = matches!(outcome.feedback, Feedback::Suggestions(_));
                            (
                                true,
                                None,
                                Some(repair.total_cost),
                                Some(relative),
                                Some(repair.modified_expression_count()),
                                repair.verified,
                                feedback,
                            )
                        }
                        None => {
                            let reason = match outcome.result.failure {
                                Some(RepairFailure::NoMatchingControlFlow) => {
                                    FailureReason::NoMatchingControlFlow
                                }
                                _ => FailureReason::Budget,
                            };
                            (false, Some(reason), None, None, None, None, false)
                        }
                    },
                }
            }
        };
        results.push(ClaraAttemptResult {
            id: attempt.id,
            kind: format!("{:?}", attempt.kind),
            fault_count: attempt.fault_count,
            repaired,
            failure,
            cost,
            relative_size: relative,
            modified_expressions: modified,
            verified,
            repair_feedback,
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    let (median_loc, median_ast) = corpus_size_stats(dataset);
    ClaraRun {
        problem: problem.name.to_owned(),
        correct: dataset.correct.len(),
        usable_correct,
        clusters: clara.clusters().len(),
        median_loc,
        median_ast,
        attempts: results,
        clustering_seconds,
    }
}

/// Runs the AutoGrader baseline over the incorrect attempts of a dataset.
pub fn run_autograder(
    dataset: &Dataset,
    model: ErrorModel,
    max_edits: usize,
) -> Vec<AutoGraderAttemptResult> {
    let grader = AutoGrader::new(AutoGraderConfig { model, max_edits, ..AutoGraderConfig::default() });
    dataset
        .incorrect
        .iter()
        .map(|attempt| {
            let start = Instant::now();
            let result = parse_program(&attempt.source)
                .ok()
                .and_then(|parsed| grader.repair(&parsed, &dataset.problem.spec));
            AutoGraderAttemptResult {
                id: attempt.id,
                repaired: result.is_some(),
                modified_expressions: result.as_ref().map(|r| r.modified_expression_count()),
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

fn corpus_size_stats(dataset: &Dataset) -> (usize, usize) {
    let mut locs = Vec::new();
    let mut asts = Vec::new();
    for attempt in dataset.correct.iter().chain(&dataset.incorrect) {
        locs.push(attempt.source.lines().filter(|l| !l.trim().is_empty()).count());
        if let Ok(parsed) = parse_program(&attempt.source) {
            asts.push(parsed.ast_size());
        }
    }
    (median_usize(locs), median_usize(asts))
}

/// Median of a list of `usize` values (0 for an empty list).
pub fn median_usize(mut values: Vec<usize>) -> usize {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[values.len() / 2]
}

/// Median of a list of `f64` values (0 for an empty list).
pub fn median_f64(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values[values.len() / 2]
}

/// Average of an iterator of `f64` values (0 for an empty iterator).
pub fn average(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

/// Formats a `Duration`-like number of seconds the way the paper does
/// ("3.2s (2.7s)").
pub fn format_seconds(avg: f64, median: f64) -> String {
    format!("{avg:.2}s ({median:.2}s)")
}

/// Pre-analyses a program for micro-benchmarks.
pub fn analyze_for_bench(problem: &Problem, source: &str) -> AnalyzedProgram {
    AnalyzedProgram::from_text(source, problem.entry, &problem.inputs(), clara_model::Fuel::default())
        .expect("benchmark program must analyse")
}

/// Writes a JSON report next to the textual output of a binary.
pub fn write_json_report<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target").join("experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(json) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, json);
            eprintln!("(json report written to {})", path.display());
        }
    }
}

/// Writes the JSON report like [`write_json_report`]; in smoke mode the
/// report is also printed to stdout and written to `BENCH_<name>.json` in the
/// working directory (the machine-readable smoke contract).
pub fn emit_json_report<T: Serialize>(name: &str, mode: RunMode, value: &T) {
    write_json_report(name, value);
    if mode.smoke {
        if let Ok(json) = serde_json::to_string_pretty(value) {
            println!("{json}");
            let path = format!("BENCH_{name}.json");
            match std::fs::write(&path, &json) {
                Ok(()) => eprintln!("(smoke json written to {path})"),
                Err(e) => eprintln!("(could not write {path}: {e})"),
            }
        }
    }
}

/// Returns elapsed seconds of a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_corpus::mooc::derivatives;

    #[test]
    fn scale_is_clamped_to_minima() {
        let scale = Scale { factor: 0.001 };
        assert_eq!(scale.apply(1472, 25), 25);
        let scale = Scale { factor: 0.1 };
        assert_eq!(scale.apply(1000, 25), 100);
    }

    #[test]
    fn clara_run_on_a_tiny_dataset() {
        let problem = derivatives();
        let dataset = generate_dataset(
            &problem,
            DatasetConfig { correct_count: 12, incorrect_count: 4, seed: 1, ..DatasetConfig::default() },
        );
        let run = run_clara(&dataset);
        assert_eq!(run.attempts.len(), 4);
        assert!(run.clusters >= 1);
        assert!(run.repaired_rate() > 0.5, "repair rate was {}", run.repaired_rate());
    }

    #[test]
    fn autograder_run_on_a_tiny_dataset() {
        let problem = derivatives();
        let dataset = generate_dataset(
            &problem,
            DatasetConfig { correct_count: 8, incorrect_count: 4, seed: 2, ..DatasetConfig::default() },
        );
        let results = run_autograder(&dataset, ErrorModel::Weak, 2);
        assert_eq!(results.len(), 4);
        // The baseline repairs strictly fewer attempts than Clara on the same
        // data (the central claim of Table 1).
        let clara = run_clara(&dataset);
        assert!(results.iter().filter(|r| r.repaired).count() <= clara.repaired_count());
    }

    #[test]
    fn repair_rates_are_reproducible_across_runs() {
        // The corpus RNG is fully seed-plumbed (DatasetConfig::seed), so two
        // identical runs must agree repair-by-repair, not just in aggregate.
        let problem = derivatives();
        let config =
            DatasetConfig { correct_count: 10, incorrect_count: 5, seed: 99, ..DatasetConfig::default() };
        let a = run_clara(&generate_dataset(&problem, config));
        let b = run_clara(&generate_dataset(&problem, config));
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.repaired_count(), b.repaired_count());
        let outcomes = |run: &ClaraRun| {
            run.attempts.iter().map(|x| (x.repaired, x.cost, x.modified_expressions)).collect::<Vec<_>>()
        };
        assert_eq!(outcomes(&a), outcomes(&b));
    }

    #[test]
    fn medians_and_averages() {
        assert_eq!(median_usize(vec![3, 1, 2]), 2);
        assert_eq!(median_usize(vec![]), 0);
        assert!((median_f64(vec![1.0, 9.0, 5.0]) - 5.0).abs() < 1e-9);
        assert!((average([1.0, 2.0, 3.0].into_iter()) - 2.0).abs() < 1e-9);
    }
}
