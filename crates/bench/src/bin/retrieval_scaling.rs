//! Retrieval scaling: matching cost against the size of the correct pool.
//!
//! The paper's pipeline scans every control-flow-compatible cluster per
//! repair, so matching cost grows linearly with the solution pool. The
//! candidate-retrieval index (structural n-grams + behaviour fingerprints)
//! shortlists a constant-size candidate set instead. This benchmark grows
//! one assignment's correct pool (60 → 1k → 10k solutions, generated as
//! verified still-correct variants by `clara_corpus`), repairs the same
//! wrong-answer mutants with and without the index, and reports candidates
//! examined, repair latency, repair-rate delta (must be zero — retrieval
//! never changes the verdict) and the index's resident size.
//!
//! `--smoke` restricts the pools to 60/1k and mirrors the JSON report to
//! `BENCH_retrieval.json`; the full run covers 10k and writes the same
//! file.

use std::time::Instant;

use clara_bench::{emit_json_report, RunMode};
use clara_core::{frontend, repair_attempt, AnalyzedProgram, Clara, ClaraConfig};
use clara_corpus::{correct_pool, derive_mutants, mooc::derivatives, MutantBucket, MutationConfig};
use serde::Serialize;

#[derive(Serialize)]
struct PoolRow {
    pool: usize,
    usable: usize,
    clusters: usize,
    index_resident_bytes: usize,
    attempts: usize,
    /// Mean clusters examined per attempt, exhaustive scan.
    full_candidates_mean: f64,
    /// Mean clusters examined per attempt with the retrieval index.
    indexed_candidates_mean: f64,
    full_ms_per_attempt: f64,
    indexed_ms_per_attempt: f64,
    full_repaired: usize,
    indexed_repaired: usize,
    /// |indexed rate − full rate|; the fallback contract keeps this at 0.
    repair_rate_delta: f64,
    /// Attempts where the shortlist came back empty-handed and the scan
    /// widened back to the full candidate set.
    fallbacks: usize,
}

#[derive(Serialize)]
struct RetrievalReport {
    problem: String,
    corpus: String,
    pools: Vec<PoolRow>,
    /// Indexed ms/attempt at the largest pool over the smallest — the
    /// sublinearity headline (a full scan scales as the pool ratio).
    indexed_latency_ratio: f64,
    full_latency_ratio: f64,
    max_repair_rate_delta: f64,
}

fn mean(values: &[usize]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<usize>() as f64 / values.len() as f64
    }
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let problem = derivatives();
    let pool_sizes: &[usize] = if mode.smoke { &[60, 1_000] } else { &[60, 1_000, 10_000] };
    let attempt_target = if mode.smoke { 8 } else { 12 };

    // One fixed set of wrong-answer attempts is reused across every pool
    // size, so the rows differ only in the pool.
    let (mutants, _) = derive_mutants(
        &problem,
        &MutationConfig { seed: 0x9E7A11, target_wrong_answer: attempt_target, max_attempts: 4_000 },
    );
    let lang_frontend = frontend(problem.lang);
    let wrong: Vec<&str> = mutants
        .iter()
        .filter(|m| m.bucket == MutantBucket::WrongAnswer)
        .take(attempt_target)
        .map(|m| m.source.as_str())
        .collect();
    assert!(!wrong.is_empty(), "mutation engine produced no wrong-answer attempts");

    println!("Retrieval scaling — {} wrong-answer attempts on `{}`:", wrong.len(), problem.name);
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "pool", "clusters", "full cand", "idx cand", "full ms", "idx ms", "fallbacks", "index bytes"
    );

    let mut rows = Vec::new();
    for &target in pool_sizes {
        let sources = correct_pool(&problem, target, 0xC0FFEE);
        let mut engine = Clara::new_in(
            problem.lang,
            problem.entry.to_owned(),
            problem.spec.inputs(),
            ClaraConfig::default(),
        );
        let mut usable = 0usize;
        for source in &sources {
            if engine.add_correct_solution(source).is_ok() {
                usable += 1;
            }
        }

        // Analyse the attempts once; both passes repair the same programs.
        let attempts: Vec<(AnalyzedProgram, _)> = wrong
            .iter()
            .filter_map(|source| {
                let parsed = lang_frontend.parse(source).ok()?;
                let program = parsed.lower(problem.entry).ok()?;
                let surface = parsed.surface(problem.entry).ok();
                Some((AnalyzedProgram::from_program(program, engine.inputs(), engine.fuel()), surface))
            })
            .collect();

        // Exhaustive baseline: the pre-index repair path over every cluster.
        let mut full_config = engine.config().repair.clone();
        full_config.use_candidate_index = false;
        let mut full_candidates = Vec::new();
        let mut full_repaired = 0usize;
        let full_start = Instant::now();
        for (attempt, _) in &attempts {
            let result = repair_attempt(engine.clusters(), attempt, engine.inputs(), &full_config);
            full_candidates.push(result.candidate_clusters);
            full_repaired += usize::from(result.best.is_some());
        }
        let full_seconds = full_start.elapsed().as_secs_f64();

        // Indexed pass: the production path (shortlist + fallback).
        let mut indexed_candidates = Vec::new();
        let mut indexed_repaired = 0usize;
        let mut fallbacks = 0usize;
        let indexed_start = Instant::now();
        for (attempt, surface) in &attempts {
            let outcome = engine.repair_with_surface(attempt, surface.as_ref());
            indexed_candidates.push(outcome.result.candidate_clusters);
            indexed_repaired += usize::from(outcome.result.best.is_some());
            fallbacks += usize::from(outcome.result.retrieval.is_some_and(|r| r.fell_back));
        }
        let indexed_seconds = indexed_start.elapsed().as_secs_f64();

        let count = attempts.len().max(1);
        let full_rate = full_repaired as f64 / count as f64;
        let indexed_rate = indexed_repaired as f64 / count as f64;
        let row = PoolRow {
            pool: target,
            usable,
            clusters: engine.clusters().len(),
            index_resident_bytes: engine.candidate_index().resident_bytes(),
            attempts: attempts.len(),
            full_candidates_mean: mean(&full_candidates),
            indexed_candidates_mean: mean(&indexed_candidates),
            full_ms_per_attempt: full_seconds * 1_000.0 / count as f64,
            indexed_ms_per_attempt: indexed_seconds * 1_000.0 / count as f64,
            full_repaired,
            indexed_repaired,
            repair_rate_delta: (full_rate - indexed_rate).abs(),
            fallbacks,
        };
        println!(
            "{:>7} {:>9} {:>12.1} {:>12.1} {:>12.2} {:>12.2} {:>10} {:>12}",
            row.pool,
            row.clusters,
            row.full_candidates_mean,
            row.indexed_candidates_mean,
            row.full_ms_per_attempt,
            row.indexed_ms_per_attempt,
            row.fallbacks,
            row.index_resident_bytes
        );
        rows.push(row);
    }

    let ratio = |f: fn(&PoolRow) -> f64| match (rows.first(), rows.last()) {
        (Some(small), Some(large)) if f(small) > 0.0 => f(large) / f(small),
        _ => 0.0,
    };
    let report = RetrievalReport {
        problem: problem.name.to_owned(),
        corpus: format!("pools {pool_sizes:?}, still-correct variants, seed 0xC0FFEE"),
        indexed_latency_ratio: ratio(|r| r.indexed_ms_per_attempt),
        full_latency_ratio: ratio(|r| r.full_ms_per_attempt),
        max_repair_rate_delta: rows.iter().map(|r| r.repair_rate_delta).fold(0.0, f64::max),
        pools: rows,
    };
    println!(
        "latency ratio largest/smallest pool: indexed {:.2}x, full scan {:.2}x (max repair-rate delta {:.4})",
        report.indexed_latency_ratio, report.full_latency_ratio, report.max_repair_rate_delta
    );

    emit_json_report("retrieval", mode, &report);
    if !mode.smoke {
        // The full run is the recorded evidence (EXPERIMENTS.md); mirror it
        // to the same file the smoke contract uses.
        if let Ok(json) = serde_json::to_string_pretty(&report) {
            if let Err(e) = std::fs::write("BENCH_retrieval.json", &json) {
                eprintln!("(could not write BENCH_retrieval.json: {e})");
            }
        }
    }
}
