//! Automated stand-in for the manual repair-quality inspection of §6.2 (3).
//!
//! The paper's authors manually inspected 100 randomly selected repairs and
//! judged 81% to be of good quality (72% "smallest, most natural repair" + 9%
//! "almost smallest"). Human judgement cannot be reproduced mechanically;
//! instead this binary classifies each generated repair with a proxy:
//!
//! * **small-and-targeted** — the repair is verified, non-trivial, and its
//!   cost is within a small slack of the number of injected faults;
//! * **larger-than-needed** — verified but noticeably larger than the
//!   injected fault count;
//! * **rewrite** — the attempt was empty or so far gone that the repair is a
//!   whole-program rewrite (the paper's category (d));
//! * **not-repaired** — no repair was produced.

use clara_bench::{emit_json_report, run_clara, RunMode};
use clara_corpus::mooc::all_mooc_problems;
use serde::Serialize;

#[derive(Serialize, Default)]
struct QualityReport {
    sampled: usize,
    small_and_targeted: usize,
    larger_than_needed: usize,
    rewrite: usize,
    not_repaired: usize,
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    let mut report = QualityReport::default();

    for problem in mode.problems(all_mooc_problems()) {
        let dataset = mode.dataset(&problem, scale, 0x5EED5);
        let run = run_clara(&dataset);
        for attempt in &run.attempts {
            report.sampled += 1;
            if !attempt.repaired {
                report.not_repaired += 1;
                continue;
            }
            let cost = attempt.cost.unwrap_or(0);
            let relative = attempt.relative_size.unwrap_or(f64::INFINITY);
            if relative.is_infinite() || relative > 1.0 {
                report.rewrite += 1;
            } else if cost as usize <= attempt.fault_count.max(1) * 4 {
                report.small_and_targeted += 1;
            } else {
                report.larger_than_needed += 1;
            }
        }
    }

    let pct = |n: usize| 100.0 * n as f64 / report.sampled.max(1) as f64;
    println!(
        "Repair-quality proxy over {} incorrect attempts ({}):",
        report.sampled,
        mode.corpus_label(scale)
    );
    println!(
        "  small and targeted (≈ paper's 'smallest, most natural'): {:>4}  ({:.0}%)",
        report.small_and_targeted,
        pct(report.small_and_targeted)
    );
    println!(
        "  larger than needed (≈ paper's 'almost smallest'/(c))   : {:>4}  ({:.0}%)",
        report.larger_than_needed,
        pct(report.larger_than_needed)
    );
    println!(
        "  whole-program rewrite (≈ paper's category (d))         : {:>4}  ({:.0}%)",
        report.rewrite,
        pct(report.rewrite)
    );
    println!(
        "  not repaired                                            : {:>4}  ({:.0}%)",
        report.not_repaired,
        pct(report.not_repaired)
    );
    println!();
    println!("Paper (manual inspection of 100 repairs): 72% smallest, 9% almost smallest,");
    println!("11% different from the student's idea, 8% student idea indeterminable.");

    emit_json_report("quality", mode, &report);
}
