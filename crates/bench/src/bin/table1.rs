//! Regenerates **Table 1** of the paper: the MOOC evaluation with the
//! AutoGrader comparison.
//!
//! For each of the three MITx problems (`derivatives`, `oddTuples`,
//! `polynomials`) the binary builds a synthetic corpus (scaled by
//! `CLARA_SCALE`, default 2% of the paper's submission counts), clusters the
//! correct pool, repairs every incorrect attempt with both Clara and the
//! AutoGrader baseline, and prints the same columns the paper reports.

use clara_autograder::ErrorModel;
use clara_bench::{emit_json_report, format_seconds, run_autograder, run_clara, RunMode};
use clara_corpus::mooc::all_mooc_problems;
use serde::Serialize;

#[derive(Serialize)]
struct Table1Row {
    problem: String,
    median_loc: usize,
    median_ast: usize,
    correct: usize,
    clusters: usize,
    cluster_percent: f64,
    incorrect: usize,
    clara_repaired: usize,
    clara_repaired_percent: f64,
    autograder_repaired: usize,
    autograder_repaired_percent: f64,
    clara_avg_s: f64,
    clara_median_s: f64,
    autograder_avg_s: f64,
    autograder_median_s: f64,
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    println!("Table 1 — MOOC evaluation with AutoGrader comparison ({}):", mode.corpus_label(scale));
    println!(
        "{:<14} {:>4} {:>4} {:>9} {:>16} {:>11} {:>22} {:>22} {:>16} {:>16}",
        "problem",
        "LOC",
        "AST",
        "#correct",
        "#clusters (%)",
        "#incorrect",
        "#repaired Clara (%)",
        "#repaired AutoGr (%)",
        "Clara avg (med)",
        "AutoGr avg (med)"
    );

    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize, 0usize, 0usize, 0usize);
    let mut all_clara_times = Vec::new();
    let mut all_ag_times = Vec::new();

    for problem in mode.problems(all_mooc_problems()) {
        let dataset = mode.dataset(&problem, scale, 0xC1A7A);
        let clara_run = run_clara(&dataset);
        let autograder_results = run_autograder(&dataset, ErrorModel::Weak, 2);

        let incorrect = clara_run.attempts.len();
        let clara_repaired = clara_run.repaired_count();
        let ag_repaired = autograder_results.iter().filter(|r| r.repaired).count();
        let cluster_percent = 100.0 * clara_run.clusters as f64 / clara_run.correct.max(1) as f64;
        let clara_pct = 100.0 * clara_repaired as f64 / incorrect.max(1) as f64;
        let ag_pct = 100.0 * ag_repaired as f64 / incorrect.max(1) as f64;
        let ag_avg = clara_bench::average(autograder_results.iter().map(|r| r.seconds));
        let ag_median = clara_bench::median_f64(autograder_results.iter().map(|r| r.seconds).collect());

        println!(
            "{:<14} {:>4} {:>4} {:>9} {:>10} ({:>4.1}%) {:>11} {:>14} ({:>5.2}%) {:>14} ({:>5.2}%) {:>16} {:>16}",
            clara_run.problem,
            clara_run.median_loc,
            clara_run.median_ast,
            clara_run.correct,
            clara_run.clusters,
            cluster_percent,
            incorrect,
            clara_repaired,
            clara_pct,
            ag_repaired,
            ag_pct,
            format_seconds(clara_run.average_seconds(), clara_run.median_seconds()),
            format_seconds(ag_avg, ag_median),
        );

        totals.0 += clara_run.correct;
        totals.1 += clara_run.clusters;
        totals.2 += incorrect;
        totals.3 += clara_repaired;
        totals.4 += ag_repaired;
        all_clara_times.extend(clara_run.attempts.iter().map(|a| a.seconds));
        all_ag_times.extend(autograder_results.iter().map(|r| r.seconds));

        rows.push(Table1Row {
            problem: clara_run.problem.clone(),
            median_loc: clara_run.median_loc,
            median_ast: clara_run.median_ast,
            correct: clara_run.correct,
            clusters: clara_run.clusters,
            cluster_percent,
            incorrect,
            clara_repaired,
            clara_repaired_percent: clara_pct,
            autograder_repaired: ag_repaired,
            autograder_repaired_percent: ag_pct,
            clara_avg_s: clara_run.average_seconds(),
            clara_median_s: clara_run.median_seconds(),
            autograder_avg_s: ag_avg,
            autograder_median_s: ag_median,
        });
    }

    println!(
        "{:<14} {:>4} {:>4} {:>9} {:>10} ({:>4.1}%) {:>11} {:>14} ({:>5.2}%) {:>14} ({:>5.2}%) {:>16} {:>16}",
        "Total",
        "-",
        "-",
        totals.0,
        totals.1,
        100.0 * totals.1 as f64 / totals.0.max(1) as f64,
        totals.2,
        totals.3,
        100.0 * totals.3 as f64 / totals.2.max(1) as f64,
        totals.4,
        100.0 * totals.4 as f64 / totals.2.max(1) as f64,
        format_seconds(
            clara_bench::average(all_clara_times.iter().copied()),
            clara_bench::median_f64(all_clara_times.clone())
        ),
        format_seconds(
            clara_bench::average(all_ag_times.iter().copied()),
            clara_bench::median_f64(all_ag_times.clone())
        ),
    );
    println!();
    println!("Paper (Table 1, full corpus): Clara repairs 97.44% of 4,293 attempts in 3.2s (2.7s) avg;");
    println!("AutoGrader repairs 19.29% in 19.7s (6.3s).  The reproduction target is the shape:");
    println!("Clara repairs nearly everything, AutoGrader a small fraction, Clara is faster per attempt.");

    emit_json_report("table1", mode, &rows);
}
