//! Regenerates the measurable columns of **Table 2** of the paper: the
//! user-study problems in an interactive-teaching simulation.
//!
//! For each of the six problems the binary builds an "existing" correct pool
//! (the ESC-101 archive stand-in) plus a smaller "study" pool of additional
//! correct attempts, clusters both, and then repairs the incorrect attempts
//! exactly as the web front-end did: a 60-second budget per attempt and the
//! generic-strategy fallback for repairs with cost above 100. The usefulness
//! grades (1–5) came from human participants and cannot be reproduced; the
//! paper's numbers are reprinted for reference.

use clara_bench::{emit_json_report, format_seconds, run_clara, RunMode};
use clara_corpus::study::all_study_problems;
use clara_corpus::{generate_dataset, DatasetConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Table2Row {
    problem: String,
    median_loc: usize,
    correct_existing: usize,
    correct_study: usize,
    clusters: usize,
    incorrect: usize,
    feedback: usize,
    feedback_percent: f64,
    repair_feedback: usize,
    repair_feedback_percent: f64,
    avg_seconds: f64,
    median_seconds: f64,
}

fn paper_grades(problem: &str) -> &'static str {
    match problem {
        "fibonacci" => "1/7/9/16/13",
        "special_number" => "2/3/8/9/13",
        "reverse_difference" => "4/4/5/3/5",
        "factorial_interval" => "2/5/4/5/13",
        "trapezoid" => "7/5/7/7/5",
        "rhombus" => "6/9/6/5/3",
        _ => "-",
    }
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    println!("Table 2 — user-study problems, interactive setting ({}):", mode.corpus_label(scale));
    println!(
        "{:<20} {:>4} {:>16} {:>9} {:>8} {:>18} {:>20} {:>16} {:>14}",
        "problem",
        "LOC",
        "#correct (e+s)",
        "#clusters",
        "#incorr",
        "#feedback (%)",
        "#repair-feedb (%)",
        "time avg (med)",
        "grades 1..5"
    );

    let mut rows = Vec::new();
    for problem in mode.problems(all_study_problems()) {
        // "Existing" pool (ESC-101 stand-in) at the configured scale, plus a
        // small "study" pool of extra correct attempts collected during the
        // sessions (the paper's `exist.+study` column).
        let dataset = mode.dataset(&problem, scale, 0xE5C101);
        let study_extra = generate_dataset(
            &problem,
            DatasetConfig {
                correct_count: (dataset.correct.len() / 8).max(3),
                incorrect_count: 0,
                seed: 0x57DD1,
                ..DatasetConfig::default()
            },
        );
        let mut combined = dataset.clone();
        let base = combined.correct.len();
        combined.correct.extend(study_extra.correct.into_iter().enumerate().map(|(i, mut attempt)| {
            attempt.id = base + i;
            attempt
        }));

        let run = run_clara(&combined);
        let incorrect = run.attempts.len();
        let feedback = run.attempts.iter().filter(|a| a.repaired).count();
        let repair_feedback = run.attempts.iter().filter(|a| a.repair_feedback).count();
        let feedback_pct = 100.0 * feedback as f64 / incorrect.max(1) as f64;
        let repair_pct = if feedback == 0 { 0.0 } else { 100.0 * repair_feedback as f64 / feedback as f64 };

        println!(
            "{:<20} {:>4} {:>10} + {:>3} {:>9} {:>8} {:>12} ({:>4.1}%) {:>13} ({:>4.1}%) {:>16} {:>14}",
            run.problem,
            run.median_loc,
            dataset.correct.len(),
            combined.correct.len() - dataset.correct.len(),
            run.clusters,
            incorrect,
            feedback,
            feedback_pct,
            repair_feedback,
            repair_pct,
            format_seconds(run.average_seconds(), run.median_seconds()),
            paper_grades(&run.problem),
        );

        rows.push(Table2Row {
            problem: run.problem.clone(),
            median_loc: run.median_loc,
            correct_existing: dataset.correct.len(),
            correct_study: combined.correct.len() - dataset.correct.len(),
            clusters: run.clusters,
            incorrect,
            feedback,
            feedback_percent: feedback_pct,
            repair_feedback,
            repair_feedback_percent: repair_pct,
            avg_seconds: run.average_seconds(),
            median_seconds: run.median_seconds(),
        });
    }

    println!();
    println!("The grades column reprints the paper's human usefulness judgements (average 3.4/5);");
    println!("they are not reproducible without participants. Paper feedback rate: 88.52% overall,");
    println!("average feedback time 8s; repairs with cost > 100 fall back to a generic strategy");
    println!("message (403 cases in the study).");

    emit_json_report("table2", mode, &rows);
}
