//! Serving throughput: the feedback service under Zipf-style MOOC traffic,
//! in-process and across a multi-process shard fleet.
//!
//! Part one is the single-process trajectory benchmark from PR 3: build the
//! per-problem cluster indexes cold, persist them, warm-load them back
//! (asserting byte-identical feedback), then replay a deterministic
//! duplicate-heavy workload through the worker pool and report requests/sec,
//! p50/p95 latency and the cache hit rate.
//!
//! Part two is the fleet benchmark for the PR 6 serving layer: spawn real
//! `clara-cli serve --listen … --shard i/N` processes for N ∈ {1, 2, 4},
//! partition a mixed-language Zipf workload across them with the same
//! consistent-hash ring the fleet uses, replay it over TCP with closed-loop
//! clients, and report per-shard and aggregate req/s plus latency
//! percentiles. In `--smoke` mode the JSON report is mirrored to stdout and
//! `BENCH_serve.json`; CI guards the aggregate req/s against the committed
//! baseline.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clara_bench::{emit_json_report, median_f64, paper_counts, RunMode};
use clara_core::ClaraConfig;
use clara_corpus::mooc::all_mooc_problems;
use clara_corpus::{
    all_minic_problems, duplicate_fraction, generate_dataset, generate_minic_dataset, generate_workload,
    partition_workload, Dataset, DatasetConfig, Problem, WorkloadConfig, WorkloadRequest,
};
use clara_model::frontend::Lang;
use clara_server::{
    ClusterStore, FeedbackService, HashRing, Request, Response, Server, ServerConfig, ServiceConfig,
    StatsReport, Status,
};
use serde::Serialize;

#[derive(Serialize)]
struct ServeReport {
    corpus: String,
    problems: usize,
    requests: usize,
    /// Logical cores of the benchmark machine (scaling context: on one core
    /// a 2-shard fleet cannot beat one shard).
    cores: usize,
    /// End-to-end requests per second through the in-process worker pool.
    requests_per_sec: f64,
    /// Per-request latency percentiles (enqueue → response), milliseconds.
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    /// Fraction of requests answered from the structural-hash cache.
    cache_hit_rate: f64,
    /// Upper bound on the cache hit rate: fraction of the workload that
    /// repeats an earlier submission verbatim.
    workload_duplicate_fraction: f64,
    /// Structural-dedup rate of the underlying datasets (what a stored
    /// corpus could be deduplicated to).
    dataset_dedup_rate: f64,
    /// Cold index bring-up: cluster the full correct pool.
    cold_build_seconds: f64,
    /// Warm index bring-up: load the persisted index (re-analyses only the
    /// cluster representatives).
    warm_load_seconds: f64,
    /// cold_build_seconds / warm_load_seconds.
    warm_speedup: f64,
    /// Whether warm and cold indexes produced byte-identical feedback on
    /// every probe attempt (the persistence acceptance criterion).
    warm_cold_identical: bool,
    /// Response status counts over the workload.
    correct: u64,
    repaired: u64,
    no_repair: u64,
    errors: u64,
    /// Jobs lost to worker panics (must be 0).
    worker_panics: u64,
    /// Multi-process fleet runs (empty when `clara-cli` was not found next
    /// to this benchmark binary).
    shard_scaling: Vec<ShardScalePoint>,
    /// Aggregate req/s at 2 shards over 1 shard (0 when not measured).
    scaling_2x: f64,
}

/// One fleet size of the multi-process benchmark.
#[derive(Serialize)]
struct ShardScalePoint {
    shards: usize,
    requests: usize,
    /// Total requests / wall-clock of the parallel replay.
    aggregate_rps: f64,
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    per_shard: Vec<ShardSide>,
}

/// Per-shard slice of a fleet run.
#[derive(Serialize)]
struct ShardSide {
    shard: String,
    addr: String,
    requests: usize,
    /// This shard's requests / its own replay elapsed.
    rps: f64,
    cache_hit_rate: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[index]
}

/// The mixed-language problem set: both frontends must appear so the fleet
/// splits MiniPy and MiniC indexes across shards.
fn select_problems(mode: RunMode) -> Vec<Problem> {
    if mode.smoke {
        let mut problems: Vec<Problem> = all_mooc_problems().into_iter().take(2).collect();
        problems.extend(all_minic_problems().into_iter().take(2));
        problems
    } else {
        let mut problems = mode.problems(all_mooc_problems());
        problems.extend(all_minic_problems());
        problems
    }
}

fn build_dataset(problem: &Problem, config: DatasetConfig) -> Dataset {
    match problem.lang {
        Lang::MiniPy => generate_dataset(problem, config),
        Lang::MiniC => generate_minic_dataset(problem, config),
    }
}

/// `clara-cli` next to the running benchmark binary (both live in the same
/// cargo target directory; bench binaries may sit one level down in
/// `deps/`).
fn find_clara_cli() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join("clara-cli");
    candidate.is_file().then_some(candidate)
}

struct ShardProc {
    child: Child,
    addr: String,
}

/// Spawns one shard process and waits for its NDJSON endpoint line.
fn spawn_shard(cli: &Path, index: usize, count: usize, problems: &[String], pool_size: usize) -> ShardProc {
    let mut command = Command::new(cli);
    command
        .arg("serve")
        .args(["--listen", "127.0.0.1:0"])
        .args(["--shard", &format!("{index}/{count}")])
        .args(["--pool-size", &pool_size.to_string()])
        .args(["--workers", "2", "--queue", "64", "--no-learn"])
        .args(problems)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = command.spawn().expect("spawning clara-cli serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = channel::<String>();
    std::thread::spawn(move || {
        // Forward the endpoint line, then keep draining so the child never
        // blocks on a full stderr pipe.
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("(ndjson endpoint on ") {
                let _ = tx.send(rest.trim_end_matches(')').to_owned());
            }
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(300))
        .expect("shard process reports its NDJSON endpoint (index build may be slow, not absent)");
    ShardProc { child, addr }
}

/// Replays `chunk` over one closed-loop TCP connection; returns per-request
/// latencies in milliseconds.
fn replay_chunk(addr: &str, chunk: &[WorkloadRequest]) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connecting to shard");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("cloning stream");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(chunk.len());
    let mut line = String::new();
    for request in chunk {
        let payload = serde_json::to_string(&Request {
            id: request.id as u64,
            problem: request.problem.clone(),
            lang: Some(request.lang.clone()),
            source: request.source.clone(),
            learn: None,
        })
        .expect("request serializes");
        let sent = Instant::now();
        writeln!(writer, "{payload}").expect("writing request");
        line.clear();
        reader.read_line(&mut line).expect("reading response");
        let _: Response = serde_json::from_str(line.trim()).expect("well-formed response");
        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
    }
    latencies
}

/// One `{"stats":true}` probe against a shard.
fn probe_stats(addr: &str) -> Option<StatsReport> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writeln!(writer, r#"{{"id":0,"stats":true}}"#).ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    serde_json::from_str(line.trim()).ok()
}

const CLIENTS_PER_SHARD: usize = 2;

/// Runs the workload against a fleet of `shards` real serve processes.
fn run_fleet(
    cli: &Path,
    shards: usize,
    problem_names: &[String],
    pool_size: usize,
    workload: &[WorkloadRequest],
) -> ShardScalePoint {
    let ring = HashRing::new(shards);
    let partitions = partition_workload(workload, shards, |r| ring.owner(&r.problem, &r.lang));

    let procs: Vec<ShardProc> =
        (0..shards).map(|i| spawn_shard(cli, i, shards, problem_names, pool_size)).collect();

    // Closed-loop replay: every shard serves its partition concurrently,
    // split over a few connections each.
    let replay_start = Instant::now();
    let mut handles = Vec::new();
    for (shard, partition) in partitions.iter().enumerate() {
        if partition.is_empty() {
            continue;
        }
        let addr = procs[shard].addr.clone();
        let chunks: Vec<Vec<WorkloadRequest>> = (0..CLIENTS_PER_SHARD)
            .map(|c| partition.iter().skip(c).step_by(CLIENTS_PER_SHARD).cloned().collect())
            .collect();
        handles.push(std::thread::spawn(move || {
            let shard_start = Instant::now();
            let mut clients = Vec::new();
            for chunk in chunks {
                let addr = addr.clone();
                clients.push(std::thread::spawn(move || replay_chunk(&addr, &chunk)));
            }
            let latencies: Vec<f64> =
                clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect();
            (shard, latencies, shard_start.elapsed().as_secs_f64())
        }));
    }
    let mut all_latencies: Vec<f64> = Vec::with_capacity(workload.len());
    let mut per_shard_elapsed = vec![0.0f64; shards];
    for handle in handles {
        let (shard, latencies, elapsed) = handle.join().expect("shard replay thread");
        per_shard_elapsed[shard] = elapsed;
        all_latencies.extend(latencies);
    }
    let wall = replay_start.elapsed().as_secs_f64();

    let per_shard: Vec<ShardSide> = procs
        .iter()
        .enumerate()
        .map(|(i, proc)| {
            let stats = probe_stats(&proc.addr);
            ShardSide {
                shard: format!("{i}/{shards}"),
                addr: proc.addr.clone(),
                requests: partitions[i].len(),
                rps: if per_shard_elapsed[i] > 0.0 {
                    partitions[i].len() as f64 / per_shard_elapsed[i]
                } else {
                    0.0
                },
                cache_hit_rate: stats.map(|s| s.cache_hit_rate).unwrap_or(0.0),
            }
        })
        .collect();

    // stdin EOF is the shutdown signal.
    for mut proc in procs {
        drop(proc.child.stdin.take());
        let _ = proc.child.wait();
    }

    all_latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    assert_eq!(all_latencies.len(), workload.len(), "every fleet request must be answered");
    ShardScalePoint {
        shards,
        requests: workload.len(),
        aggregate_rps: workload.len() as f64 / wall.max(1e-9),
        p50_latency_ms: median_f64(all_latencies.clone()),
        p95_latency_ms: percentile(&all_latencies, 0.95),
        per_shard,
    }
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    let corpus_label = if mode.smoke {
        "smoke subset: 2 MiniPy + 2 MiniC problems, 40 correct + 8 incorrect each, 150 requests".to_owned()
    } else {
        format!("{} + MiniC translations", mode.corpus_label(scale))
    };
    println!("Serve throughput — feedback service under mixed-language Zipf traffic ({corpus_label}):");

    let problems = select_problems(mode);
    let datasets: Vec<Dataset> = problems
        .iter()
        .map(|problem| {
            let (paper_correct, paper_incorrect) = paper_counts(problem.name);
            let config = if mode.smoke {
                // Large enough that cold clustering visibly dominates warm
                // representative re-analysis, small enough for a fast smoke.
                DatasetConfig {
                    correct_count: 40,
                    incorrect_count: 8,
                    seed: 0x53E5,
                    duplicate_rate: 0.3,
                    ..DatasetConfig::default()
                }
            } else {
                DatasetConfig {
                    correct_count: scale.apply(paper_correct, 25),
                    incorrect_count: scale.apply(paper_incorrect, 12),
                    seed: 0x53E5,
                    duplicate_rate: 0.3,
                    ..DatasetConfig::default()
                }
            };
            build_dataset(problem, config)
        })
        .collect();
    let dataset_dedup_rate = {
        let stats: Vec<f64> = datasets.iter().map(|d| d.stats().structural_dedup_rate).collect();
        stats.iter().sum::<f64>() / stats.len() as f64
    };

    // Cold bring-up: cluster every correct pool from scratch.
    let cold_start = Instant::now();
    let cold_stores: Vec<ClusterStore> = datasets
        .iter()
        .map(|dataset| {
            let (store, _) = ClusterStore::build(
                &dataset.problem,
                dataset.correct.iter().map(|a| a.source.as_str()),
                ClaraConfig::default(),
            );
            store
        })
        .collect();
    let cold_build_seconds = cold_start.elapsed().as_secs_f64();

    // Persist, then warm bring-up from the stored indexes.
    let index_dir = std::env::temp_dir().join(format!("clara-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&index_dir);
    for store in &cold_stores {
        store.save(&index_dir).expect("persisting the cluster index");
    }
    let warm_start = Instant::now();
    let warm_stores: Vec<ClusterStore> = datasets
        .iter()
        .map(|dataset| {
            ClusterStore::load(&index_dir, &dataset.problem, ClaraConfig::default())
                .expect("loading the cluster index")
                .expect("index file exists")
        })
        .collect();
    let warm_load_seconds = warm_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&index_dir);

    // Byte-identical feedback, warm vs cold, on every incorrect attempt.
    let cold_service = FeedbackService::new(cold_stores, ServiceConfig::default());
    let probe_service = FeedbackService::new(warm_stores.clone(), ServiceConfig::default());
    let mut warm_cold_identical = true;
    for dataset in &datasets {
        for attempt in &dataset.incorrect {
            let request = Request {
                id: attempt.id as u64,
                problem: dataset.problem.name.to_owned(),
                lang: None,
                source: attempt.source.clone(),
                learn: None,
            };
            let cold = cold_service.handle(&request);
            let warm = probe_service.handle(&request);
            if cold.feedback != warm.feedback || cold.status != warm.status {
                warm_cold_identical = false;
                eprintln!("(warm/cold divergence on {} attempt {})", dataset.problem.name, attempt.id);
            }
        }
    }

    // Replay the Zipf workload through the pooled in-process service.
    let workload_config = if mode.smoke {
        WorkloadConfig { requests: 150, ..WorkloadConfig::default() }
    } else {
        WorkloadConfig { requests: scale.apply(17_266, 400), ..WorkloadConfig::default() }
    };
    let workload = generate_workload(&datasets, workload_config);
    let workload_duplicate_fraction = duplicate_fraction(&workload);

    let service = Arc::new(FeedbackService::new(warm_stores, ServiceConfig::default()));
    let mut server = Server::new(
        Arc::clone(&service),
        ServerConfig { workers: 4, queue_capacity: 32, ..ServerConfig::default() },
    );
    let (reply, responses) = channel::<(Status, f64)>();
    let replay_start = Instant::now();
    for request in &workload {
        let reply = reply.clone();
        let submitted = Instant::now();
        server
            .submit(
                Request {
                    id: request.id as u64,
                    problem: request.problem.clone(),
                    lang: Some(request.lang.clone()),
                    source: request.source.clone(),
                    learn: None,
                },
                move |response| {
                    let _ = reply.send((response.status, submitted.elapsed().as_secs_f64() * 1e3));
                },
            )
            .expect("pool accepts jobs");
    }
    drop(reply);
    server.shutdown();
    let replay_seconds = replay_start.elapsed().as_secs_f64();

    let collected: Vec<(Status, f64)> = responses.iter().collect();
    assert_eq!(collected.len(), workload.len(), "every request must be answered");
    let mut latencies: Vec<f64> = collected.iter().map(|(_, ms)| *ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let count_status = |status: Status| collected.iter().filter(|(s, _)| *s == status).count() as u64;

    // The multi-process fleet: 1/2/4 shard processes over TCP.
    let problem_names: Vec<String> = problems.iter().map(|p| p.name.to_owned()).collect();
    let fleet_sizes: &[usize] = if mode.smoke { &[1, 2] } else { &[1, 2, 4] };
    let fleet_pool_size = if mode.smoke { 12 } else { 40 };
    let shard_scaling: Vec<ShardScalePoint> = match find_clara_cli() {
        Some(cli) => fleet_sizes
            .iter()
            .map(|&n| {
                println!("(fleet: replaying {} requests against {n} shard process(es))", workload.len());
                run_fleet(&cli, n, &problem_names, fleet_pool_size, &workload)
            })
            .collect(),
        None => {
            println!("(fleet: clara-cli not found next to this binary — skipping multi-process runs)");
            Vec::new()
        }
    };
    let rps_at =
        |n: usize| shard_scaling.iter().find(|p| p.shards == n).map(|p| p.aggregate_rps).unwrap_or(0.0);
    let scaling_2x = if rps_at(1) > 0.0 { rps_at(2) / rps_at(1) } else { 0.0 };

    let stats = service.stats();
    let report = ServeReport {
        corpus: corpus_label,
        problems: datasets.len(),
        requests: workload.len(),
        cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        requests_per_sec: workload.len() as f64 / replay_seconds,
        p50_latency_ms: median_f64(latencies.clone()),
        p95_latency_ms: percentile(&latencies, 0.95),
        cache_hit_rate: stats.cache_hits as f64 / stats.requests.max(1) as f64,
        workload_duplicate_fraction,
        dataset_dedup_rate,
        cold_build_seconds,
        warm_load_seconds,
        warm_speedup: cold_build_seconds / warm_load_seconds.max(1e-9),
        warm_cold_identical,
        correct: count_status(Status::Correct),
        repaired: count_status(Status::Repaired),
        no_repair: count_status(Status::NoRepair),
        errors: count_status(Status::Error),
        worker_panics: server.panic_count(),
        shard_scaling,
        scaling_2x,
    };

    println!("{:<28} {:>10}", "requests", report.requests);
    println!("{:<28} {:>10.1}", "requests/sec (in-process)", report.requests_per_sec);
    println!("{:<28} {:>10.2}", "p50 latency (ms)", report.p50_latency_ms);
    println!("{:<28} {:>10.2}", "p95 latency (ms)", report.p95_latency_ms);
    println!("{:<28} {:>9.1}%", "cache hit rate", report.cache_hit_rate * 100.0);
    println!("{:<28} {:>9.1}%", "workload duplicates", report.workload_duplicate_fraction * 100.0);
    println!("{:<28} {:>10.3}", "cold build (s)", report.cold_build_seconds);
    println!("{:<28} {:>10.3}", "warm load (s)", report.warm_load_seconds);
    println!("{:<28} {:>9.1}x", "warm speedup", report.warm_speedup);
    println!("{:<28} {:>10}", "warm == cold feedback", report.warm_cold_identical);
    for point in &report.shard_scaling {
        println!(
            "{:<28} {:>10.1}  (p50 {:.2} ms, p95 {:.2} ms)",
            format!("fleet req/s @ {} shard(s)", point.shards),
            point.aggregate_rps,
            point.p50_latency_ms,
            point.p95_latency_ms
        );
        for side in &point.per_shard {
            println!(
                "    shard {:<6} {:>6} reqs {:>9.1} req/s  cache {:>5.1}%",
                side.shard,
                side.requests,
                side.rps,
                side.cache_hit_rate * 100.0
            );
        }
    }
    if report.scaling_2x > 0.0 {
        println!("{:<28} {:>9.2}x  ({} cores)", "2-shard scaling", report.scaling_2x, report.cores);
    }
    println!();
    println!("The cache hit rate is bounded above by the workload duplicate fraction; the");
    println!("gap is the (problem, structural-hash) pairs evicted or not yet seen.");

    emit_json_report("serve", mode, &report);
}
