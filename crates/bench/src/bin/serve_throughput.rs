//! Serving throughput: the feedback service under Zipf-style MOOC traffic,
//! in-process and across a multi-process shard fleet.
//!
//! Part one is the single-process trajectory benchmark from PR 3: build the
//! per-problem cluster indexes cold, persist them, warm-load them back
//! (asserting byte-identical feedback), then replay a deterministic
//! duplicate-heavy workload through the worker pool and report requests/sec,
//! p50/p95 latency and the cache hit rate.
//!
//! Part two is the fleet benchmark for the PR 6 serving layer: spawn real
//! `clara-cli serve --listen … --shard i/N` processes for N ∈ {1, 2, 4},
//! partition a mixed-language Zipf workload across them with the same
//! consistent-hash ring the fleet uses, replay it over TCP with closed-loop
//! clients, and report per-shard and aggregate req/s plus latency
//! percentiles. In `--smoke` mode the JSON report is mirrored to stdout and
//! `BENCH_serve.json`; CI guards the aggregate req/s against the committed
//! baseline.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clara_bench::{emit_json_report, median_f64, paper_counts, RunMode};
use clara_core::ClaraConfig;
use clara_corpus::mooc::all_mooc_problems;
use clara_corpus::{
    all_minic_problems, duplicate_fraction, generate_dataset, generate_minic_dataset, generate_workload,
    partition_workload, Dataset, DatasetConfig, Problem, WorkloadConfig, WorkloadRequest,
};
use clara_model::frontend::Lang;
use clara_server::{
    ClusterStore, FeedbackService, HashRing, Request, Response, RouterReport, Server, ServerConfig,
    ServiceConfig, StatsReport, Status,
};
use serde::Serialize;

#[derive(Serialize)]
struct ServeReport {
    corpus: String,
    problems: usize,
    requests: usize,
    /// Logical cores of the benchmark machine (scaling context: on one core
    /// a 2-shard fleet cannot beat one shard).
    cores: usize,
    /// End-to-end requests per second through the in-process worker pool.
    requests_per_sec: f64,
    /// Per-request latency percentiles (enqueue → response), milliseconds.
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    /// Fraction of requests answered from the structural-hash cache.
    cache_hit_rate: f64,
    /// Upper bound on the cache hit rate: fraction of the workload that
    /// repeats an earlier submission verbatim.
    workload_duplicate_fraction: f64,
    /// Structural-dedup rate of the underlying datasets (what a stored
    /// corpus could be deduplicated to).
    dataset_dedup_rate: f64,
    /// Cold index bring-up: cluster the full correct pool.
    cold_build_seconds: f64,
    /// Warm index bring-up: load the persisted index (re-analyses only the
    /// cluster representatives).
    warm_load_seconds: f64,
    /// cold_build_seconds / warm_load_seconds.
    warm_speedup: f64,
    /// Whether warm and cold indexes produced byte-identical feedback on
    /// every probe attempt (the persistence acceptance criterion).
    warm_cold_identical: bool,
    /// Response status counts over the workload.
    correct: u64,
    repaired: u64,
    no_repair: u64,
    errors: u64,
    /// Workload requests whose source fails frontend analysis (the corpus
    /// deliberately includes submissions using constructs outside the
    /// modelled subset, e.g. MiniC attempts defining helper functions).
    /// Every `errors` response must come from this population and vice
    /// versa; anything else would be a serving bug, so the replay asserts
    /// `errors == unanalysable_requests`.
    unanalysable_requests: u64,
    /// Jobs lost to worker panics (must be 0).
    worker_panics: u64,
    /// Multi-process fleet runs (empty when `clara-cli` was not found next
    /// to this benchmark binary).
    shard_scaling: Vec<ShardScalePoint>,
    /// Aggregate req/s at 2 shards over 1 shard (0 when not measured).
    scaling_2x: f64,
    /// Per-stage latency quantiles from the process-global stage histograms
    /// (`clara_stage_duration_us`), measured over the in-process replay.
    latency_breakdown: Vec<StageLatency>,
}

/// Microsecond latency summary of one pipeline stage.
#[derive(Serialize)]
struct StageLatency {
    stage: String,
    count: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
    mean_us: f64,
}

/// One fleet size of the multi-process benchmark.
#[derive(Serialize)]
struct ShardScalePoint {
    shards: usize,
    requests: usize,
    /// Total requests / wall-clock of the parallel replay.
    aggregate_rps: f64,
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    per_shard: Vec<ShardSide>,
}

/// Per-shard slice of a fleet run.
#[derive(Serialize)]
struct ShardSide {
    shard: String,
    addr: String,
    requests: usize,
    /// This shard's requests / its own replay elapsed.
    rps: f64,
    cache_hit_rate: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[index]
}

/// The mixed-language problem set: both frontends must appear so the fleet
/// splits MiniPy and MiniC indexes across shards.
fn select_problems(mode: RunMode) -> Vec<Problem> {
    if mode.smoke {
        let mut problems: Vec<Problem> = all_mooc_problems().into_iter().take(2).collect();
        problems.extend(all_minic_problems().into_iter().take(2));
        problems
    } else {
        let mut problems = mode.problems(all_mooc_problems());
        problems.extend(all_minic_problems());
        problems
    }
}

fn build_dataset(problem: &Problem, config: DatasetConfig) -> Dataset {
    match problem.lang {
        Lang::MiniPy => generate_dataset(problem, config),
        Lang::MiniC => generate_minic_dataset(problem, config),
    }
}

/// `clara-cli` next to the running benchmark binary (both live in the same
/// cargo target directory; bench binaries may sit one level down in
/// `deps/`).
fn find_clara_cli() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join("clara-cli");
    candidate.is_file().then_some(candidate)
}

struct ShardProc {
    child: Child,
    addr: String,
}

/// Extra knobs of a spawned serve process (the chaos scenario uses all of
/// them; the plain fleet benchmark uses none).
#[derive(Default, Clone)]
struct SpawnOptions {
    /// Bind this concrete address instead of an ephemeral port (a restarted
    /// shard must come back on the address the router holds).
    listen: Option<String>,
    /// `--faults` spec armed on the process.
    faults: Option<String>,
    /// Allow online learning (`--no-learn` is passed otherwise).
    learn: bool,
}

/// Spawns one serve process and waits for its NDJSON endpoint line.
/// Returns `None` when the process exits before reporting an endpoint
/// (e.g. its port is still in TIME_WAIT after a kill) — callers may retry.
fn try_spawn_serve(
    cli: &Path,
    role_args: &[String],
    problems: &[String],
    options: &SpawnOptions,
) -> Option<ShardProc> {
    let listen = options.listen.clone().unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let mut command = Command::new(cli);
    command
        .arg("serve")
        .args(["--listen", &listen])
        .args(role_args)
        .args(["--workers", "2", "--queue", "64"])
        .args(problems)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if !options.learn {
        command.arg("--no-learn");
    }
    if let Some(spec) = &options.faults {
        command.args(["--faults", spec]);
    }
    let mut child = command.spawn().expect("spawning clara-cli serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = channel::<String>();
    std::thread::spawn(move || {
        // Forward the endpoint line, then keep draining so the child never
        // blocks on a full stderr pipe.
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("(ndjson endpoint on ") {
                let _ = tx.send(rest.trim_end_matches(')').to_owned());
            }
        }
    });
    for _ in 0..1200 {
        match rx.recv_timeout(Duration::from_millis(250)) {
            Ok(addr) => return Some(ShardProc { child, addr }),
            Err(_) => {
                if let Ok(Some(_status)) = child.try_wait() {
                    return None; // bind failed (or the process died early)
                }
                // Still building its indexes; keep waiting (index builds
                // are slow, not absent).
            }
        }
    }
    let _ = child.kill();
    panic!("serve process never reported its NDJSON endpoint");
}

/// Spawns one shard process and waits for its NDJSON endpoint line.
fn spawn_shard(cli: &Path, index: usize, count: usize, problems: &[String], pool_size: usize) -> ShardProc {
    spawn_shard_with(cli, index, count, problems, pool_size, &SpawnOptions::default())
}

fn spawn_shard_with(
    cli: &Path,
    index: usize,
    count: usize,
    problems: &[String],
    pool_size: usize,
    options: &SpawnOptions,
) -> ShardProc {
    let role = vec![
        "--shard".to_owned(),
        format!("{index}/{count}"),
        "--pool-size".to_owned(),
        pool_size.to_string(),
    ];
    // A freshly killed shard's port can linger in TIME_WAIT; rebinding it
    // deserves a few patient attempts before giving up.
    for _ in 0..40 {
        if let Some(proc) = try_spawn_serve(cli, &role, problems, options) {
            return proc;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    panic!("shard {index}/{count} never came up on {:?}", options.listen);
}

/// Spawns a router process over the given shard addresses.
fn spawn_router(cli: &Path, shard_addrs: &[String]) -> ShardProc {
    let role = vec!["--router".to_owned(), "--shards".to_owned(), shard_addrs.join(",")];
    try_spawn_serve(cli, &role, &[], &SpawnOptions::default()).expect("router process comes up")
}

/// Replays `chunk` over one closed-loop TCP connection; returns per-request
/// latencies in milliseconds.
fn replay_chunk(addr: &str, chunk: &[WorkloadRequest]) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connecting to shard");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("cloning stream");
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(chunk.len());
    let mut line = String::new();
    for request in chunk {
        let payload = serde_json::to_string(&Request {
            id: request.id as u64,
            problem: request.problem.clone(),
            lang: Some(request.lang.clone()),
            source: request.source.clone(),
            learn: None,
            trace: None,
        })
        .expect("request serializes");
        let sent = Instant::now();
        writeln!(writer, "{payload}").expect("writing request");
        line.clear();
        reader.read_line(&mut line).expect("reading response");
        let _: Response = serde_json::from_str(line.trim()).expect("well-formed response");
        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
    }
    latencies
}

/// One `{"stats":true}` probe against a shard.
fn probe_stats(addr: &str) -> Option<StatsReport> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writeln!(writer, r#"{{"id":0,"stats":true}}"#).ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    serde_json::from_str(line.trim()).ok()
}

/// One `{"stats":true}` probe against a router.
fn probe_router_stats(addr: &str) -> Option<RouterReport> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writeln!(writer, r#"{{"id":0,"stats":true}}"#).ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    serde_json::from_str(line.trim()).ok()
}

/// A chaos-aware NDJSON client: reconnects on broken exchanges, retries
/// transient error responses with a small backoff, and counts what it had
/// to absorb. This is what a sane fleet client looks like, and it is the
/// measurement instrument for "bounded client-visible error rate".
struct ResilientClient {
    addr: String,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
    /// Extra attempts beyond each request's first.
    retries: u64,
    /// Requests that stayed failed after the whole retry budget.
    errors: u64,
}

impl ResilientClient {
    fn new(addr: &str) -> ResilientClient {
        ResilientClient { addr: addr.to_owned(), conn: None, retries: 0, errors: 0 }
    }

    fn connect(&mut self) -> Option<&mut (TcpStream, BufReader<TcpStream>)> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr).ok()?;
            stream.set_nodelay(true).ok()?;
            stream.set_read_timeout(Some(Duration::from_secs(60))).ok()?;
            let reader = BufReader::new(stream.try_clone().ok()?);
            self.conn = Some((stream, reader));
        }
        self.conn.as_mut()
    }

    fn exchange_once(&mut self, payload: &str) -> Option<Response> {
        let (writer, reader) = self.connect()?;
        if writeln!(writer, "{payload}").is_err() {
            self.conn = None;
            return None;
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => match serde_json::from_str::<Response>(line.trim()) {
                Ok(response) => Some(response),
                Err(_) => {
                    // A garbled line poisons the stream framing; reconnect.
                    self.conn = None;
                    None
                }
            },
            _ => {
                self.conn = None;
                None
            }
        }
    }

    /// Sends one request with up to `attempts` tries; `None` only after the
    /// whole budget failed (counted in `errors`).
    fn call(&mut self, request: &Request, attempts: u32) -> Option<Response> {
        let payload = serde_json::to_string(request).expect("request serializes");
        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries += 1;
                std::thread::sleep(Duration::from_millis(25 * u64::from(attempt)));
            }
            // A broken exchange (`None`) reconnects and retries; a reply is
            // returned unless it names a transient fleet condition.
            if let Some(response) = self.exchange_once(&payload) {
                let transient = response.status == Status::Error
                    && response.error.as_deref().is_some_and(|e| {
                        e.contains("unreachable")
                            || e.contains("overloaded")
                            || e.contains("shutting down")
                            || e.contains("circuit breaker")
                            || e.contains("timed out")
                    });
                if !transient {
                    return Some(response);
                }
            }
        }
        self.errors += 1;
        None
    }
}

/// The JSON contract of the `--chaos` run (`BENCH_serve_chaos.json`): a
/// three-shard fleet behind a router, deterministic net-layer faults on
/// every shard, one owner shard killed and restarted mid-workload.
#[derive(Serialize)]
struct ChaosReport {
    corpus: String,
    shards: usize,
    fault_spec: String,
    /// Feedback requests replayed through the router (all phases).
    requests: usize,
    /// Client-side extra attempts absorbed by retry/reconnect.
    client_retries: u64,
    /// Requests still failed after the client's whole retry budget.
    client_errors: u64,
    /// `client_errors / requests`.
    error_rate: f64,
    /// Learn requests sent / acknowledged (`learned: true` responses);
    /// `lost_learns` must be 0 — replication's acceptance criterion.
    learn_attempts: usize,
    learn_acks: usize,
    lost_learns: usize,
    /// Concurrent duplicate novel submissions in the single-flight probe
    /// and how many of the `N-1` followers were answered without a
    /// duplicate repair (coalesced in flight or served from cache).
    coalesce_probe_requests: usize,
    coalesced: u64,
    coalesce_cache_hits: u64,
    coalescing_hit_rate: f64,
    /// The killed owner shard and how long until the first successful
    /// response for one of its problems (served by the ring successor).
    killed_shard: String,
    recovery_seconds: f64,
    /// Successful responses for the dead shard's problems while it was down.
    served_during_outage: usize,
    /// Router counters at the end of the run.
    router_forwarded: u64,
    router_retries: u64,
    router_failovers: u64,
    router_replicated_learns: u64,
    router_upstream_errors: u64,
    shed_requests: u64,
    /// Worker panics summed over every surviving process (must be 0).
    worker_panics: u64,
}

const CLIENTS_PER_SHARD: usize = 2;

/// Runs the workload against a fleet of `shards` real serve processes.
fn run_fleet(
    cli: &Path,
    shards: usize,
    problem_names: &[String],
    pool_size: usize,
    workload: &[WorkloadRequest],
) -> ShardScalePoint {
    let ring = HashRing::new(shards);
    let partitions = partition_workload(workload, shards, |r| ring.owner(&r.problem, &r.lang));

    let procs: Vec<ShardProc> =
        (0..shards).map(|i| spawn_shard(cli, i, shards, problem_names, pool_size)).collect();

    // Closed-loop replay: every shard serves its partition concurrently,
    // split over a few connections each.
    let replay_start = Instant::now();
    let mut handles = Vec::new();
    for (shard, partition) in partitions.iter().enumerate() {
        if partition.is_empty() {
            continue;
        }
        let addr = procs[shard].addr.clone();
        let chunks: Vec<Vec<WorkloadRequest>> = (0..CLIENTS_PER_SHARD)
            .map(|c| partition.iter().skip(c).step_by(CLIENTS_PER_SHARD).cloned().collect())
            .collect();
        handles.push(std::thread::spawn(move || {
            let shard_start = Instant::now();
            let mut clients = Vec::new();
            for chunk in chunks {
                let addr = addr.clone();
                clients.push(std::thread::spawn(move || replay_chunk(&addr, &chunk)));
            }
            let latencies: Vec<f64> =
                clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect();
            (shard, latencies, shard_start.elapsed().as_secs_f64())
        }));
    }
    let mut all_latencies: Vec<f64> = Vec::with_capacity(workload.len());
    let mut per_shard_elapsed = vec![0.0f64; shards];
    for handle in handles {
        let (shard, latencies, elapsed) = handle.join().expect("shard replay thread");
        per_shard_elapsed[shard] = elapsed;
        all_latencies.extend(latencies);
    }
    let wall = replay_start.elapsed().as_secs_f64();

    let per_shard: Vec<ShardSide> = procs
        .iter()
        .enumerate()
        .map(|(i, proc)| {
            let stats = probe_stats(&proc.addr);
            ShardSide {
                shard: format!("{i}/{shards}"),
                addr: proc.addr.clone(),
                requests: partitions[i].len(),
                rps: if per_shard_elapsed[i] > 0.0 {
                    partitions[i].len() as f64 / per_shard_elapsed[i]
                } else {
                    0.0
                },
                cache_hit_rate: stats.map(|s| s.cache_hit_rate).unwrap_or(0.0),
            }
        })
        .collect();

    // stdin EOF is the shutdown signal.
    for mut proc in procs {
        drop(proc.child.stdin.take());
        let _ = proc.child.wait();
    }

    all_latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    assert_eq!(all_latencies.len(), workload.len(), "every fleet request must be answered");
    ShardScalePoint {
        shards,
        requests: workload.len(),
        aggregate_rps: workload.len() as f64 / wall.max(1e-9),
        p50_latency_ms: median_f64(all_latencies.clone()),
        p95_latency_ms: percentile(&all_latencies, 0.95),
        per_shard,
    }
}

/// Sums a per-shard counter over every reachable shard.
fn sum_shard_stats(addrs: &[String], pick: impl Fn(&StatsReport) -> u64) -> u64 {
    addrs.iter().filter_map(|a| probe_stats(a)).map(|s| pick(&s)).sum()
}

/// The `--chaos` scenario: a 3-shard fleet behind a router, deterministic
/// net-layer faults on every shard, one owner shard killed and restarted
/// mid-workload. Asserts the PR's acceptance criteria directly: zero lost
/// learns, failover to the ring successor within the retry budget, bounded
/// client-visible error rate, and effective single-flight coalescing.
fn run_chaos(mode: RunMode) {
    const SHARDS: usize = 3;
    const FAULT_SPEC: &str = "seed=11,close=0.02,garble=0.03,delay=0.1,delay_ms=5";
    const LEARNS: usize = 8;
    const COALESCE_CLIENTS: usize = 8;
    let request_budget = if mode.smoke { 120 } else { 600 };

    let Some(cli) = find_clara_cli() else {
        eprintln!("chaos: clara-cli not found next to this binary — build it first");
        std::process::exit(1);
    };

    let corpus_label = format!("chaos fleet: {SHARDS} shards + router, faults {FAULT_SPEC}");
    println!("Serve chaos — fault-injected fleet with shard kill/restart ({corpus_label}):");

    let problems = select_problems(RunMode { smoke: true, chaos: true });
    let datasets: Vec<Dataset> = problems
        .iter()
        .map(|problem| {
            build_dataset(
                problem,
                DatasetConfig {
                    correct_count: 20,
                    incorrect_count: 6,
                    seed: 0x53E5,
                    duplicate_rate: 0.3,
                    ..DatasetConfig::default()
                },
            )
        })
        .collect();
    let workload = generate_workload(
        &datasets,
        WorkloadConfig { requests: request_budget, ..WorkloadConfig::default() },
    );
    // Novel sources the main workload never saw: correct ones to learn,
    // an incorrect one for the single-flight probe.
    let extra: Vec<Dataset> = problems
        .iter()
        .map(|problem| {
            build_dataset(
                problem,
                DatasetConfig {
                    correct_count: LEARNS,
                    incorrect_count: 2,
                    seed: 0xC0A1,
                    ..DatasetConfig::default()
                },
            )
        })
        .collect();

    let problem_names: Vec<String> = problems.iter().map(|p| p.name.to_owned()).collect();
    let shard_options = SpawnOptions { listen: None, faults: Some(FAULT_SPEC.to_owned()), learn: true };
    println!("(spawning {SHARDS} fault-injected shard(s) and a router)");
    let mut shards: Vec<ShardProc> =
        (0..SHARDS).map(|i| spawn_shard_with(&cli, i, SHARDS, &problem_names, 12, &shard_options)).collect();
    let shard_addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();
    let router = spawn_router(&cli, &shard_addrs);

    let ring = HashRing::new(SHARDS);
    let victim = ring.owner(problems[0].name, problems[0].lang.as_str());
    let dead_owned: Vec<&Problem> =
        problems.iter().filter(|p| ring.owner(p.name, p.lang.as_str()) == victim).collect();

    let mut client = ResilientClient::new(&router.addr);
    let third = workload.len() / 3;
    let mut next_id = 1_000_000u64;
    let replay = |client: &mut ResilientClient, slice: &[WorkloadRequest]| -> usize {
        let mut answered = 0usize;
        for request in slice {
            let ok = client
                .call(
                    &Request {
                        id: request.id as u64,
                        problem: request.problem.clone(),
                        lang: Some(request.lang.clone()),
                        source: request.source.clone(),
                        learn: None,
                        trace: None,
                    },
                    5,
                )
                .is_some();
            answered += usize::from(ok);
        }
        answered
    };

    // Phase A — healthy fleet: first third of the workload, then the learns
    // (each replicated by the router to owner AND ring successor).
    println!("(phase A: healthy replay + {LEARNS} learns per problem's extra pool)");
    replay(&mut client, &workload[..third]);
    let mut learn_attempts = 0usize;
    let mut learn_acks = 0usize;
    let mut learned_sources: Vec<(String, String, String)> = Vec::new();
    for (problem, dataset) in problems.iter().zip(&extra) {
        for attempt in dataset.correct.iter().take(LEARNS / problems.len().max(1) + 1) {
            learn_attempts += 1;
            next_id += 1;
            let response = client.call(
                &Request {
                    id: next_id,
                    problem: problem.name.to_owned(),
                    lang: Some(problem.lang.as_str().to_owned()),
                    source: attempt.source.clone(),
                    learn: Some(true),
                    trace: None,
                },
                6,
            );
            if response.is_some_and(|r| r.status == Status::Correct) {
                learn_acks += 1;
                learned_sources.push((
                    problem.name.to_owned(),
                    problem.lang.as_str().to_owned(),
                    attempt.source.clone(),
                ));
            }
        }
    }

    // Single-flight probe: concurrent duplicates of one novel incorrect
    // submission must share one repair (coalesced or cache-hit followers).
    println!("(coalescing probe: {COALESCE_CLIENTS} concurrent duplicates of a novel submission)");
    let before_coalesced = sum_shard_stats(&shard_addrs, |s| s.service.coalesced);
    let before_hits = sum_shard_stats(&shard_addrs, |s| s.cache_hits);
    let probe_problem = &problems[0];
    let probe_source = extra[0]
        .incorrect
        .first()
        .map(|a| a.source.clone())
        .unwrap_or_else(|| extra[0].correct.last().expect("extra pool is non-empty").source.clone());
    let router_addr = router.addr.clone();
    let coalesce_threads: Vec<_> = (0..COALESCE_CLIENTS)
        .map(|i| {
            let addr = router_addr.clone();
            let problem = probe_problem.name.to_owned();
            let lang = probe_problem.lang.as_str().to_owned();
            let source = probe_source.clone();
            std::thread::spawn(move || {
                let mut client = ResilientClient::new(&addr);
                client
                    .call(
                        &Request {
                            id: 2_000_000 + i as u64,
                            problem,
                            lang: Some(lang),
                            source,
                            learn: None,
                            trace: None,
                        },
                        5,
                    )
                    .is_some()
            })
        })
        .collect();
    let coalesce_answered = coalesce_threads.into_iter().map(false_on_panic).filter(|&ok| ok).count();
    let coalesced = sum_shard_stats(&shard_addrs, |s| s.service.coalesced) - before_coalesced;
    let coalesce_cache_hits = sum_shard_stats(&shard_addrs, |s| s.cache_hits) - before_hits;
    let coalescing_hit_rate =
        (coalesced + coalesce_cache_hits) as f64 / (COALESCE_CLIENTS.saturating_sub(1)).max(1) as f64;

    // Kill the owner of the first problem; the ring successor holds the
    // replica and must serve its problems within the retry budget.
    println!(
        "(killing shard {victim}/{SHARDS} — owner of {})",
        dead_owned.iter().map(|p| p.name).collect::<Vec<_>>().join(", ")
    );
    let _ = shards[victim].child.kill();
    let _ = shards[victim].child.wait();
    let killed_at = Instant::now();
    next_id += 1;
    let recovery_probe = Request {
        id: next_id,
        problem: probe_problem.name.to_owned(),
        lang: Some(probe_problem.lang.as_str().to_owned()),
        source: datasets[0].correct[0].source.clone(),
        learn: None,
        trace: None,
    };
    let recovered = client.call(&recovery_probe, 8).is_some();
    let recovery_seconds = killed_at.elapsed().as_secs_f64();

    // Phase B — outage: second third of the workload against 2 live shards.
    println!("(phase B: replay during the outage)");
    let outage_slice = &workload[third..2 * third];
    let served_during_outage = replay(&mut client, outage_slice) + usize::from(recovered);

    // Restart the dead shard on the address the router still holds; its
    // breaker half-opens after the cooldown and the probe re-closes it.
    println!("(restarting shard {victim}/{SHARDS} on {})", shard_addrs[victim]);
    let restart_options = SpawnOptions {
        listen: Some(shard_addrs[victim].clone()),
        faults: Some(FAULT_SPEC.to_owned()),
        learn: true,
    };
    shards[victim] = spawn_shard_with(&cli, victim, SHARDS, &problem_names, 12, &restart_options);

    // Phase C — recovered fleet: the rest of the workload, then verify every
    // acknowledged learn is still served (the successor kept the replica).
    println!("(phase C: replay after restart + learn verification)");
    replay(&mut client, &workload[2 * third..]);
    let mut reread_failures = 0usize;
    for (problem, lang, source) in &learned_sources {
        next_id += 1;
        let response = client.call(
            &Request {
                id: next_id,
                problem: problem.clone(),
                lang: Some(lang.clone()),
                source: source.clone(),
                learn: None,
                trace: None,
            },
            6,
        );
        if !response.is_some_and(|r| r.status == Status::Correct) {
            reread_failures += 1;
        }
    }
    let lost_learns = (learn_attempts - learn_acks) + reread_failures;

    let router_report = probe_router_stats(&router.addr);
    let worker_panics = sum_shard_stats(&shard_addrs, |s| s.worker_panics);
    let shard_shed = sum_shard_stats(&shard_addrs, |s| s.shed_requests);
    let total_requests = workload.len() + learn_attempts + learned_sources.len() + COALESCE_CLIENTS + 1;
    let report = ChaosReport {
        corpus: corpus_label,
        shards: SHARDS,
        fault_spec: FAULT_SPEC.to_owned(),
        requests: total_requests,
        client_retries: client.retries,
        client_errors: client.errors + (COALESCE_CLIENTS - coalesce_answered) as u64,
        error_rate: (client.errors as f64 + (COALESCE_CLIENTS - coalesce_answered) as f64)
            / total_requests as f64,
        learn_attempts,
        learn_acks,
        lost_learns,
        coalesce_probe_requests: COALESCE_CLIENTS,
        coalesced,
        coalesce_cache_hits,
        coalescing_hit_rate,
        killed_shard: format!("{victim}/{SHARDS}"),
        recovery_seconds,
        served_during_outage,
        router_forwarded: router_report.as_ref().map_or(0, |r| r.forwarded),
        router_retries: router_report.as_ref().map_or(0, |r| r.retries),
        router_failovers: router_report.as_ref().map_or(0, |r| r.failovers),
        router_replicated_learns: router_report.as_ref().map_or(0, |r| r.replicated_learns),
        router_upstream_errors: router_report.as_ref().map_or(0, |r| r.upstream_errors),
        shed_requests: router_report.as_ref().map_or(0, |r| r.shed_requests) + shard_shed,
        worker_panics,
    };

    // Shut the fleet down before asserting, so failures don't leak children.
    let mut procs = shards;
    procs.push(router);
    for mut proc in procs {
        drop(proc.child.stdin.take());
        let _ = proc.child.wait();
    }

    println!("{:<28} {:>10}", "requests (all phases)", report.requests);
    println!("{:<28} {:>10}", "client retries", report.client_retries);
    println!("{:<28} {:>10}", "client errors", report.client_errors);
    println!("{:<28} {:>9.2}%", "error rate", report.error_rate * 100.0);
    println!("{:<28} {:>7}/{:<2}", "learn acks", report.learn_acks, report.learn_attempts);
    println!("{:<28} {:>10}", "lost learns", report.lost_learns);
    println!("{:<28} {:>9.1}%", "coalescing hit rate", report.coalescing_hit_rate * 100.0);
    println!("{:<28} {:>10.2}", "failover recovery (s)", report.recovery_seconds);
    println!("{:<28} {:>10}", "served during outage", report.served_during_outage);
    println!("{:<28} {:>10}", "router failovers", report.router_failovers);
    println!("{:<28} {:>10}", "router retries", report.router_retries);
    println!("{:<28} {:>10}", "replicated learns", report.router_replicated_learns);
    println!("{:<28} {:>10}", "worker panics", report.worker_panics);

    emit_json_report("serve_chaos", mode, &report);

    assert_eq!(report.lost_learns, 0, "replication must lose zero learns");
    assert_eq!(report.worker_panics, 0, "no worker may panic under chaos");
    assert!(recovered, "the ring successor must serve the dead shard's problems");
    assert!(
        report.error_rate <= 0.05,
        "client-visible error rate {:.3} exceeds the 5% chaos budget",
        report.error_rate
    );
    assert!(report.router_failovers >= 1, "the outage must be served via failover");
    assert!(report.router_replicated_learns >= 1, "learns must reach a second replica");
    assert!(
        report.coalescing_hit_rate >= 0.5,
        "single-flight must absorb most duplicate followers (got {:.2})",
        report.coalescing_hit_rate
    );
    println!();
    println!("chaos run passed: zero lost learns, failover within budget, coalescing effective");
}

/// `thread::join` as a boolean: a panicked probe thread counts as failure.
fn false_on_panic(handle: std::thread::JoinHandle<bool>) -> bool {
    handle.join().unwrap_or(false)
}

fn main() {
    let mode = RunMode::from_env_and_args();
    if mode.chaos {
        run_chaos(mode);
        return;
    }
    let scale = mode.scale();
    let corpus_label = if mode.smoke {
        "smoke subset: 2 MiniPy + 2 MiniC problems, 40 correct + 8 incorrect each, 150 requests".to_owned()
    } else {
        format!("{} + MiniC translations", mode.corpus_label(scale))
    };
    println!("Serve throughput — feedback service under mixed-language Zipf traffic ({corpus_label}):");

    let problems = select_problems(mode);
    let datasets: Vec<Dataset> = problems
        .iter()
        .map(|problem| {
            let (paper_correct, paper_incorrect) = paper_counts(problem.name);
            let config = if mode.smoke {
                // Large enough that cold clustering visibly dominates warm
                // representative re-analysis, small enough for a fast smoke.
                DatasetConfig {
                    correct_count: 40,
                    incorrect_count: 8,
                    seed: 0x53E5,
                    duplicate_rate: 0.3,
                    ..DatasetConfig::default()
                }
            } else {
                DatasetConfig {
                    correct_count: scale.apply(paper_correct, 25),
                    incorrect_count: scale.apply(paper_incorrect, 12),
                    seed: 0x53E5,
                    duplicate_rate: 0.3,
                    ..DatasetConfig::default()
                }
            };
            build_dataset(problem, config)
        })
        .collect();
    let dataset_dedup_rate = {
        let stats: Vec<f64> = datasets.iter().map(|d| d.stats().structural_dedup_rate).collect();
        stats.iter().sum::<f64>() / stats.len() as f64
    };

    // Cold bring-up: cluster every correct pool from scratch.
    let cold_start = Instant::now();
    let cold_stores: Vec<ClusterStore> = datasets
        .iter()
        .map(|dataset| {
            let (store, _) = ClusterStore::build(
                &dataset.problem,
                dataset.correct.iter().map(|a| a.source.as_str()),
                ClaraConfig::default(),
            );
            store
        })
        .collect();
    let cold_build_seconds = cold_start.elapsed().as_secs_f64();

    // Persist, then warm bring-up from the stored indexes.
    let index_dir = std::env::temp_dir().join(format!("clara-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&index_dir);
    for store in &cold_stores {
        store.save(&index_dir).expect("persisting the cluster index");
    }
    let warm_start = Instant::now();
    let warm_stores: Vec<ClusterStore> = datasets
        .iter()
        .map(|dataset| {
            ClusterStore::load(&index_dir, &dataset.problem, ClaraConfig::default())
                .expect("loading the cluster index")
                .expect("index file exists")
        })
        .collect();
    let warm_load_seconds = warm_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&index_dir);

    // Byte-identical feedback, warm vs cold, on every incorrect attempt.
    let cold_service = FeedbackService::new(cold_stores, ServiceConfig::default());
    let probe_service = FeedbackService::new(warm_stores.clone(), ServiceConfig::default());
    let mut warm_cold_identical = true;
    for dataset in &datasets {
        for attempt in &dataset.incorrect {
            let request = Request {
                id: attempt.id as u64,
                problem: dataset.problem.name.to_owned(),
                lang: None,
                source: attempt.source.clone(),
                learn: None,
                trace: None,
            };
            let cold = cold_service.handle(&request);
            let warm = probe_service.handle(&request);
            if cold.feedback != warm.feedback || cold.status != warm.status {
                warm_cold_identical = false;
                eprintln!("(warm/cold divergence on {} attempt {})", dataset.problem.name, attempt.id);
            }
        }
    }

    // Replay the Zipf workload through the pooled in-process service.
    let workload_config = if mode.smoke {
        WorkloadConfig { requests: 150, ..WorkloadConfig::default() }
    } else {
        WorkloadConfig { requests: scale.apply(17_266, 400), ..WorkloadConfig::default() }
    };
    let workload = generate_workload(&datasets, workload_config);
    let workload_duplicate_fraction = duplicate_fraction(&workload);

    // The corpus deliberately seeds the incorrect pools with submissions
    // using constructs outside the frontend's modelled subset (e.g. MiniC
    // attempts defining helper functions), and the Zipf sampler replays
    // them like any other attempt. Exactly those — the requests whose
    // source fails frontend analysis — must come back as `Status::Error`.
    let unanalysable_requests = {
        let by_name: std::collections::HashMap<&str, &Problem> =
            problems.iter().map(|p| (p.name, p)).collect();
        workload
            .iter()
            .filter(|r| {
                by_name.get(r.problem.as_str()).is_some_and(|p| {
                    clara_core::frontend(p.lang)
                        .parse(&r.source)
                        .ok()
                        .and_then(|parsed| parsed.lower(p.entry).ok())
                        .is_none()
                })
            })
            .count() as u64
    };

    let service = Arc::new(FeedbackService::new(warm_stores, ServiceConfig::default()));
    let mut server = Server::new(
        Arc::clone(&service),
        ServerConfig { workers: 4, queue_capacity: 32, ..ServerConfig::default() },
    );
    let (reply, responses) = channel::<(Status, f64)>();
    let replay_start = Instant::now();
    for request in &workload {
        let reply = reply.clone();
        let submitted = Instant::now();
        server
            .submit(
                Request {
                    id: request.id as u64,
                    problem: request.problem.clone(),
                    lang: Some(request.lang.clone()),
                    source: request.source.clone(),
                    learn: None,
                    trace: None,
                },
                move |response| {
                    let _ = reply.send((response.status, submitted.elapsed().as_secs_f64() * 1e3));
                },
            )
            .expect("pool accepts jobs");
    }
    drop(reply);
    server.shutdown();
    let replay_seconds = replay_start.elapsed().as_secs_f64();

    let collected: Vec<(Status, f64)> = responses.iter().collect();
    assert_eq!(collected.len(), workload.len(), "every request must be answered");
    let mut latencies: Vec<f64> = collected.iter().map(|(_, ms)| *ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let count_status = |status: Status| collected.iter().filter(|(s, _)| *s == status).count() as u64;
    // Classify the error responses: the service must reject exactly the
    // deliberately-unanalysable population, nothing more (a serving bug) and
    // nothing less (a silently swallowed rejection).
    assert_eq!(
        count_status(Status::Error),
        unanalysable_requests,
        "error responses must map 1:1 to the workload's unanalysable submissions"
    );

    // The multi-process fleet: 1/2/4 shard processes over TCP.
    let problem_names: Vec<String> = problems.iter().map(|p| p.name.to_owned()).collect();
    let fleet_sizes: &[usize] = if mode.smoke { &[1, 2] } else { &[1, 2, 4] };
    let fleet_pool_size = if mode.smoke { 12 } else { 40 };
    let shard_scaling: Vec<ShardScalePoint> = match find_clara_cli() {
        Some(cli) => fleet_sizes
            .iter()
            .map(|&n| {
                println!("(fleet: replaying {} requests against {n} shard process(es))", workload.len());
                run_fleet(&cli, n, &problem_names, fleet_pool_size, &workload)
            })
            .collect(),
        None => {
            println!("(fleet: clara-cli not found next to this binary — skipping multi-process runs)");
            Vec::new()
        }
    };
    let rps_at =
        |n: usize| shard_scaling.iter().find(|p| p.shards == n).map(|p| p.aggregate_rps).unwrap_or(0.0);
    let scaling_2x = if rps_at(1) > 0.0 { rps_at(2) / rps_at(1) } else { 0.0 };

    // Per-stage latency breakdown from the process-global registry. The
    // fleet runs are separate processes, so this reflects exactly the
    // in-process traffic above (warm/cold probes plus the replay).
    let latency_breakdown: Vec<StageLatency> = clara_server::Registry::global()
        .dump(0)
        .histograms
        .iter()
        .filter(|h| h.name == "clara_stage_duration_us")
        .map(|h| StageLatency {
            stage: h.labels.first().map(|l| l.v.clone()).unwrap_or_default(),
            count: h.hist.count,
            p50_us: h.hist.quantile(0.5),
            p90_us: h.hist.quantile(0.9),
            p99_us: h.hist.quantile(0.99),
            max_us: h.hist.max,
            mean_us: h.hist.mean(),
        })
        .filter(|s| s.count > 0)
        .collect();

    let stats = service.stats();
    let report = ServeReport {
        corpus: corpus_label,
        problems: datasets.len(),
        requests: workload.len(),
        cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        requests_per_sec: workload.len() as f64 / replay_seconds,
        p50_latency_ms: median_f64(latencies.clone()),
        p95_latency_ms: percentile(&latencies, 0.95),
        cache_hit_rate: stats.cache_hits as f64 / stats.requests.max(1) as f64,
        workload_duplicate_fraction,
        dataset_dedup_rate,
        cold_build_seconds,
        warm_load_seconds,
        warm_speedup: cold_build_seconds / warm_load_seconds.max(1e-9),
        warm_cold_identical,
        correct: count_status(Status::Correct),
        repaired: count_status(Status::Repaired),
        no_repair: count_status(Status::NoRepair),
        errors: count_status(Status::Error),
        unanalysable_requests,
        worker_panics: server.panic_count(),
        shard_scaling,
        scaling_2x,
        latency_breakdown,
    };

    println!("{:<28} {:>10}", "requests", report.requests);
    println!("{:<28} {:>10.1}", "requests/sec (in-process)", report.requests_per_sec);
    println!("{:<28} {:>10.2}", "p50 latency (ms)", report.p50_latency_ms);
    println!("{:<28} {:>10.2}", "p95 latency (ms)", report.p95_latency_ms);
    println!("{:<28} {:>9.1}%", "cache hit rate", report.cache_hit_rate * 100.0);
    println!("{:<28} {:>9.1}%", "workload duplicates", report.workload_duplicate_fraction * 100.0);
    println!("{:<28} {:>10.3}", "cold build (s)", report.cold_build_seconds);
    println!("{:<28} {:>10.3}", "warm load (s)", report.warm_load_seconds);
    println!("{:<28} {:>9.1}x", "warm speedup", report.warm_speedup);
    println!("{:<28} {:>10}", "warm == cold feedback", report.warm_cold_identical);
    for point in &report.shard_scaling {
        println!(
            "{:<28} {:>10.1}  (p50 {:.2} ms, p95 {:.2} ms)",
            format!("fleet req/s @ {} shard(s)", point.shards),
            point.aggregate_rps,
            point.p50_latency_ms,
            point.p95_latency_ms
        );
        for side in &point.per_shard {
            println!(
                "    shard {:<6} {:>6} reqs {:>9.1} req/s  cache {:>5.1}%",
                side.shard,
                side.requests,
                side.rps,
                side.cache_hit_rate * 100.0
            );
        }
    }
    if report.scaling_2x > 0.0 {
        println!("{:<28} {:>9.2}x  ({} cores)", "2-shard scaling", report.scaling_2x, report.cores);
    }
    if !report.latency_breakdown.is_empty() {
        println!("per-stage latency (us):");
        for stage in &report.latency_breakdown {
            println!(
                "    {:<16} n={:<7} p50 {:>8} p90 {:>8} p99 {:>8} max {:>9}",
                stage.stage, stage.count, stage.p50_us, stage.p90_us, stage.p99_us, stage.max_us
            );
        }
    }
    println!();
    println!("The cache hit rate is bounded above by the workload duplicate fraction; the");
    println!("gap is the (problem, structural-hash) pairs evicted or not yet seen.");

    emit_json_report("serve", mode, &report);
}
