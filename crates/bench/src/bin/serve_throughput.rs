//! Serving throughput: the feedback service under Zipf-style MOOC traffic.
//!
//! This is the trajectory benchmark for the serving layer introduced in
//! PR 3: it builds the per-problem cluster indexes cold, persists them,
//! warm-loads them back (asserting byte-identical feedback), then replays a
//! deterministic duplicate-heavy workload through the worker pool and
//! reports requests/sec, p50/p95 latency, the cache hit rate and the warm
//! vs cold index bring-up times. In `--smoke` mode the JSON report is
//! mirrored to stdout and `BENCH_serve.json`.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Instant;

use clara_bench::{emit_json_report, median_f64, paper_counts, RunMode};
use clara_core::ClaraConfig;
use clara_corpus::mooc::all_mooc_problems;
use clara_corpus::{
    duplicate_fraction, generate_dataset, generate_workload, Dataset, DatasetConfig, WorkloadConfig,
};
use clara_server::{ClusterStore, FeedbackService, Request, Server, ServerConfig, ServiceConfig, Status};
use serde::Serialize;

#[derive(Serialize)]
struct ServeReport {
    corpus: String,
    problems: usize,
    requests: usize,
    /// End-to-end requests per second through the worker pool.
    requests_per_sec: f64,
    /// Per-request latency percentiles (enqueue → response), milliseconds.
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    /// Fraction of requests answered from the structural-hash cache.
    cache_hit_rate: f64,
    /// Upper bound on the cache hit rate: fraction of the workload that
    /// repeats an earlier submission verbatim.
    workload_duplicate_fraction: f64,
    /// Structural-dedup rate of the underlying datasets (what a stored
    /// corpus could be deduplicated to).
    dataset_dedup_rate: f64,
    /// Cold index bring-up: cluster the full correct pool.
    cold_build_seconds: f64,
    /// Warm index bring-up: load the persisted index (re-analyses only the
    /// cluster representatives).
    warm_load_seconds: f64,
    /// cold_build_seconds / warm_load_seconds.
    warm_speedup: f64,
    /// Whether warm and cold indexes produced byte-identical feedback on
    /// every probe attempt (the persistence acceptance criterion).
    warm_cold_identical: bool,
    /// Response status counts over the workload.
    correct: u64,
    repaired: u64,
    no_repair: u64,
    errors: u64,
    /// Jobs lost to worker panics (must be 0).
    worker_panics: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[index]
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    let corpus_label = if mode.smoke {
        "smoke subset: 2 problems, 40 correct + 8 incorrect each, 150 requests".to_owned()
    } else {
        mode.corpus_label(scale)
    };
    println!("Serve throughput — feedback service under Zipf traffic ({corpus_label}):");

    // Traffic-model corpora: duplicate-heavy incorrect pools, mixed problems
    // (two problems even in smoke mode — sharding with one shard would not
    // exercise the problem-routing path).
    let problems = if mode.smoke {
        all_mooc_problems().into_iter().take(2).collect()
    } else {
        mode.problems(all_mooc_problems())
    };
    let datasets: Vec<Dataset> = problems
        .iter()
        .map(|problem| {
            let (paper_correct, paper_incorrect) = paper_counts(problem.name);
            let config = if mode.smoke {
                // Large enough that cold clustering visibly dominates warm
                // representative re-analysis, small enough for a <5 s smoke.
                DatasetConfig {
                    correct_count: 40,
                    incorrect_count: 8,
                    seed: 0x53E5,
                    duplicate_rate: 0.3,
                    ..DatasetConfig::default()
                }
            } else {
                DatasetConfig {
                    correct_count: scale.apply(paper_correct, 25),
                    incorrect_count: scale.apply(paper_incorrect, 12),
                    seed: 0x53E5,
                    duplicate_rate: 0.3,
                    ..DatasetConfig::default()
                }
            };
            generate_dataset(problem, config)
        })
        .collect();
    let dataset_dedup_rate = {
        let stats: Vec<f64> = datasets.iter().map(|d| d.stats().structural_dedup_rate).collect();
        stats.iter().sum::<f64>() / stats.len() as f64
    };

    // Cold bring-up: cluster every correct pool from scratch.
    let cold_start = Instant::now();
    let cold_stores: Vec<ClusterStore> = datasets
        .iter()
        .map(|dataset| {
            let (store, _) = ClusterStore::build(
                &dataset.problem,
                dataset.correct.iter().map(|a| a.source.as_str()),
                ClaraConfig::default(),
            );
            store
        })
        .collect();
    let cold_build_seconds = cold_start.elapsed().as_secs_f64();

    // Persist, then warm bring-up from the stored indexes.
    let index_dir = std::env::temp_dir().join(format!("clara-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&index_dir);
    for store in &cold_stores {
        store.save(&index_dir).expect("persisting the cluster index");
    }
    let warm_start = Instant::now();
    let warm_stores: Vec<ClusterStore> = datasets
        .iter()
        .map(|dataset| {
            ClusterStore::load(&index_dir, &dataset.problem, ClaraConfig::default())
                .expect("loading the cluster index")
                .expect("index file exists")
        })
        .collect();
    let warm_load_seconds = warm_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&index_dir);

    // Byte-identical feedback, warm vs cold, on every incorrect attempt.
    let cold_service = FeedbackService::new(cold_stores, ServiceConfig::default());
    let probe_service = FeedbackService::new(warm_stores.clone(), ServiceConfig::default());
    let mut warm_cold_identical = true;
    for dataset in &datasets {
        for attempt in &dataset.incorrect {
            let request = Request {
                id: attempt.id as u64,
                problem: dataset.problem.name.to_owned(),
                lang: None,
                source: attempt.source.clone(),
                learn: None,
            };
            let cold = cold_service.handle(&request);
            let warm = probe_service.handle(&request);
            if cold.feedback != warm.feedback || cold.status != warm.status {
                warm_cold_identical = false;
                eprintln!("(warm/cold divergence on {} attempt {})", dataset.problem.name, attempt.id);
            }
        }
    }

    // Replay the Zipf workload through the pooled service.
    let workload_config = if mode.smoke {
        WorkloadConfig { requests: 150, ..WorkloadConfig::default() }
    } else {
        WorkloadConfig { requests: scale.apply(17_266, 400), ..WorkloadConfig::default() }
    };
    let workload = generate_workload(&datasets, workload_config);
    let workload_duplicate_fraction = duplicate_fraction(&workload);

    let service = Arc::new(FeedbackService::new(warm_stores, ServiceConfig::default()));
    let mut server = Server::new(Arc::clone(&service), ServerConfig { workers: 4, queue_capacity: 32 });
    let (reply, responses) = channel::<(Status, f64)>();
    let replay_start = Instant::now();
    for request in &workload {
        let reply = reply.clone();
        let submitted = Instant::now();
        server
            .submit(
                Request {
                    id: request.id as u64,
                    problem: request.problem.clone(),
                    lang: Some(request.lang.clone()),
                    source: request.source.clone(),
                    learn: None,
                },
                move |response| {
                    let _ = reply.send((response.status, submitted.elapsed().as_secs_f64() * 1e3));
                },
            )
            .expect("pool accepts jobs");
    }
    drop(reply);
    server.shutdown();
    let replay_seconds = replay_start.elapsed().as_secs_f64();

    let collected: Vec<(Status, f64)> = responses.iter().collect();
    assert_eq!(collected.len(), workload.len(), "every request must be answered");
    let mut latencies: Vec<f64> = collected.iter().map(|(_, ms)| *ms).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let count_status = |status: Status| collected.iter().filter(|(s, _)| *s == status).count() as u64;

    let stats = service.stats();
    let report = ServeReport {
        corpus: corpus_label,
        problems: datasets.len(),
        requests: workload.len(),
        requests_per_sec: workload.len() as f64 / replay_seconds,
        p50_latency_ms: median_f64(latencies.clone()),
        p95_latency_ms: percentile(&latencies, 0.95),
        cache_hit_rate: stats.cache_hits as f64 / stats.requests.max(1) as f64,
        workload_duplicate_fraction,
        dataset_dedup_rate,
        cold_build_seconds,
        warm_load_seconds,
        warm_speedup: cold_build_seconds / warm_load_seconds.max(1e-9),
        warm_cold_identical,
        correct: count_status(Status::Correct),
        repaired: count_status(Status::Repaired),
        no_repair: count_status(Status::NoRepair),
        errors: count_status(Status::Error),
        worker_panics: server.panic_count(),
    };

    println!("{:<28} {:>10}", "requests", report.requests);
    println!("{:<28} {:>10.1}", "requests/sec", report.requests_per_sec);
    println!("{:<28} {:>10.2}", "p50 latency (ms)", report.p50_latency_ms);
    println!("{:<28} {:>10.2}", "p95 latency (ms)", report.p95_latency_ms);
    println!("{:<28} {:>9.1}%", "cache hit rate", report.cache_hit_rate * 100.0);
    println!("{:<28} {:>9.1}%", "workload duplicates", report.workload_duplicate_fraction * 100.0);
    println!("{:<28} {:>10.3}", "cold build (s)", report.cold_build_seconds);
    println!("{:<28} {:>10.3}", "warm load (s)", report.warm_load_seconds);
    println!("{:<28} {:>9.1}x", "warm speedup", report.warm_speedup);
    println!("{:<28} {:>10}", "warm == cold feedback", report.warm_cold_identical);
    println!();
    println!("The cache hit rate is bounded above by the workload duplicate fraction; the");
    println!("gap is the (problem, structural-hash) pairs evicted or not yet seen.");

    emit_json_report("serve", mode, &report);
}
