//! Regenerates **Figure 6** of the paper: the histogram of relative repair
//! sizes (tree-edit-distance of the repair divided by the AST size of the
//! attempt) over all repaired MOOC attempts.

use clara_bench::{emit_json_report, run_clara, RunMode};
use clara_corpus::mooc::all_mooc_problems;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Report {
    buckets: Vec<(String, usize)>,
    total_repaired: usize,
    share_below_0_3: f64,
    share_below_0_2: f64,
    share_below_0_1: f64,
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    let mut sizes: Vec<f64> = Vec::new();
    for problem in mode.problems(all_mooc_problems()) {
        let dataset = mode.dataset(&problem, scale, 0xC1A7A);
        let run = run_clara(&dataset);
        sizes.extend(run.attempts.iter().filter_map(|a| a.relative_size));
    }

    // Buckets: [0.0,0.1), [0.1,0.2), ..., [0.9,1.0), >=1.0, ∞.
    let mut buckets: Vec<(String, usize)> =
        (0..10).map(|i| (format!("[{:.1},{:.1})", i as f64 / 10.0, (i + 1) as f64 / 10.0), 0usize)).collect();
    buckets.push((">=1.0".to_owned(), 0));
    buckets.push(("inf".to_owned(), 0));

    for &size in &sizes {
        let index = if size.is_infinite() {
            11
        } else if size >= 1.0 {
            10
        } else {
            ((size * 10.0).floor() as usize).min(9)
        };
        buckets[index].1 += 1;
    }

    let total = sizes.len().max(1);
    let share = |limit: f64| {
        100.0 * sizes.iter().filter(|s| s.is_finite() && **s < limit).count() as f64 / total as f64
    };

    println!(
        "Figure 6 — histogram of relative repair sizes ({} repaired attempts, {}):",
        sizes.len(),
        mode.corpus_label(scale)
    );
    let max_count = buckets.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    for (label, count) in &buckets {
        let bar_length = (50 * count).div_ceil(max_count);
        println!("{label:>10} | {:<50} {count}", "█".repeat(bar_length));
    }
    println!();
    println!(
        "share of repairs with relative size < 0.3: {:.0}%   < 0.2: {:.0}%   < 0.1: {:.0}%",
        share(0.3),
        share(0.2),
        share(0.1)
    );
    println!("Paper: 68% < 0.3, 53% < 0.2, 25% < 0.1; the ∞ bar is caused by empty attempts.");

    emit_json_report(
        "fig6",
        mode,
        &Fig6Report {
            buckets,
            total_repaired: sizes.len(),
            share_below_0_3: share(0.3),
            share_below_0_2: share(0.2),
            share_below_0_1: share(0.1),
        },
    );
}
