//! Regenerates **Figure 7** of the paper: the comparison of repair sizes
//! between AutoGrader and Clara.
//!
//! Panel (a): over the attempts *both* tools repair, how often does one tool
//! modify fewer expressions than the other. Panel (b): the overall
//! distribution of the number of modified expressions per repair, per tool.

use std::collections::HashMap;

use clara_autograder::ErrorModel;
use clara_bench::{emit_json_report, run_autograder, run_clara, RunMode};
use clara_corpus::mooc::all_mooc_problems;
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Report {
    equal: usize,
    autograder_fewer: usize,
    clara_fewer: usize,
    clara_distribution: Vec<(String, usize)>,
    autograder_distribution: Vec<(String, usize)>,
}

fn bucket_label(count: usize) -> String {
    if count >= 5 {
        "5+".to_owned()
    } else {
        count.to_string()
    }
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    let mut equal = 0usize;
    let mut ag_fewer = 0usize;
    let mut clara_fewer = 0usize;
    let mut clara_dist: HashMap<String, usize> = HashMap::new();
    let mut ag_dist: HashMap<String, usize> = HashMap::new();

    for problem in mode.problems(all_mooc_problems()) {
        let dataset = mode.dataset(&problem, scale, 0xC1A7A);
        let clara_run = run_clara(&dataset);
        let ag_results = run_autograder(&dataset, ErrorModel::Weak, 2);

        let ag_by_id: HashMap<usize, &clara_bench::AutoGraderAttemptResult> =
            ag_results.iter().map(|r| (r.id, r)).collect();

        for attempt in &clara_run.attempts {
            if let Some(clara_mods) = attempt.modified_expressions {
                *clara_dist.entry(bucket_label(clara_mods)).or_default() += 1;
            }
            let ag = ag_by_id.get(&attempt.id);
            if let Some(ag) = ag {
                if let Some(ag_mods) = ag.modified_expressions {
                    if ag.repaired {
                        *ag_dist.entry(bucket_label(ag_mods)).or_default() += 1;
                    }
                    if attempt.repaired && ag.repaired {
                        let clara_mods = attempt.modified_expressions.unwrap_or(0);
                        match clara_mods.cmp(&ag_mods) {
                            std::cmp::Ordering::Equal => equal += 1,
                            std::cmp::Ordering::Greater => ag_fewer += 1,
                            std::cmp::Ordering::Less => clara_fewer += 1,
                        }
                    }
                }
            }
        }
    }

    println!(
        "Figure 7(a) — number of modified expressions when both tools repair ({}):",
        mode.corpus_label(scale)
    );
    println!("  equal number        : {equal}");
    println!("  AutoGrader modifies fewer : {ag_fewer}");
    println!("  Clara modifies fewer      : {clara_fewer}");
    println!("Paper: 580 equal / 164 AutoGrader fewer / 83 Clara fewer (log-scale bars).");
    println!();

    let labels = ["0", "1", "2", "3", "4", "5+"];
    println!("Figure 7(b) — distribution of #modified expressions per repair:");
    println!("{:>6} {:>10} {:>12}", "#exprs", "Clara", "AutoGrader");
    let mut clara_distribution = Vec::new();
    let mut ag_distribution = Vec::new();
    for label in labels {
        let c = clara_dist.get(label).copied().unwrap_or(0);
        let a = ag_dist.get(label).copied().unwrap_or(0);
        println!("{label:>6} {c:>10} {a:>12}");
        clara_distribution.push((label.to_owned(), c));
        ag_distribution.push((label.to_owned(), a));
    }
    println!("Paper: most AutoGrader repairs modify a single expression and the percentage");
    println!("falls off faster than Clara's (Clara can afford larger, multi-expression repairs).");

    emit_json_report(
        "fig7",
        mode,
        &Fig7Report {
            equal,
            autograder_fewer: ag_fewer,
            clara_fewer,
            clara_distribution,
            autograder_distribution: ag_distribution,
        },
    );
}
