//! Cross-frontend parity benchmark: the same assignments served in MiniPy
//! and MiniC.
//!
//! CLARA's §3 claim is that one program model serves multiple source
//! languages. This binary measures that claim on the three translated
//! problem pairs (`fibonacci`/`fibonacci_c`, ...):
//!
//! * **parity** — the reference solutions of a pair lower to *isomorphic*
//!   model programs: identical control-flow signatures and identical traces
//!   (location sequence, printed output) on the shared grading inputs;
//! * **performance** — clustering and repair timings per frontend over the
//!   pair's corpora, so a frontend regression (e.g. a MiniC lowering change
//!   that splits blocks differently) shows up as a parity break or a timing
//!   skew.
//!
//! Writes `BENCH_frontends.json` in `--smoke` mode (uploaded by CI next to
//! the other bench artifacts).

use std::time::Instant;

use clara_bench::{average, emit_json_report, RunMode};
use clara_core::{AnalyzedProgram, Clara, ClaraConfig};
use clara_corpus::minic::{fibonacci_c, reverse_difference_c, special_number_c};
use clara_corpus::study::{fibonacci, reverse_difference, special_number};
use clara_corpus::{generate_dataset_for, DatasetConfig, Problem};
use clara_model::Fuel;
use serde::Serialize;

/// Per-frontend measurements for one problem of a pair.
#[derive(Serialize)]
struct LangSide {
    problem: String,
    lang: String,
    correct_pool: usize,
    clusters: usize,
    attempts: usize,
    repaired: usize,
    clustering_seconds: f64,
    avg_repair_seconds: f64,
    feedback_sample: Vec<String>,
}

/// One MiniPy/MiniC problem pair.
#[derive(Serialize)]
struct PairReport {
    same_signature: bool,
    same_traces: bool,
    minipy: LangSide,
    minic: LangSide,
}

#[derive(Serialize)]
struct FrontendsReport {
    corpus: String,
    pairs: Vec<PairReport>,
    /// True iff every pair's references lower to isomorphic models.
    all_parity: bool,
}

/// Lowers a problem's reference and executes it on the problem's inputs.
fn analyze_reference(problem: &Problem) -> AnalyzedProgram {
    AnalyzedProgram::from_text_in(
        problem.lang,
        problem.reference,
        problem.entry,
        &problem.inputs(),
        Fuel::default(),
    )
    .expect("reference solutions analyse")
}

fn run_side(problem: &Problem, config: DatasetConfig) -> LangSide {
    let dataset = generate_dataset_for(problem, config);
    let mut engine = Clara::new_in(problem.lang, problem.entry, problem.inputs(), ClaraConfig::default());
    let clustering_start = Instant::now();
    let mut usable = 0usize;
    for attempt in &dataset.correct {
        if engine.add_correct_solution(&attempt.source).is_ok() {
            usable += 1;
        }
    }
    let clustering_seconds = clustering_start.elapsed().as_secs_f64();

    let mut repaired = 0usize;
    let mut seconds = Vec::new();
    let mut feedback_sample = Vec::new();
    for attempt in &dataset.incorrect {
        let start = Instant::now();
        if let Ok(outcome) = engine.repair_source(&attempt.source) {
            if outcome.result.best.is_some() {
                repaired += 1;
                if feedback_sample.is_empty() {
                    feedback_sample = outcome.feedback.lines();
                }
            }
        }
        seconds.push(start.elapsed().as_secs_f64());
    }
    LangSide {
        problem: problem.name.to_owned(),
        lang: problem.lang.as_str().to_owned(),
        correct_pool: usable,
        clusters: engine.clusters().len(),
        attempts: dataset.incorrect.len(),
        repaired,
        clustering_seconds,
        avg_repair_seconds: average(seconds.into_iter()),
        feedback_sample,
    }
}

fn run_pair(py: &Problem, c: &Problem, config: DatasetConfig) -> PairReport {
    let py_ref = analyze_reference(py);
    let c_ref = analyze_reference(c);
    let same_signature = py_ref.program.same_control_flow(&c_ref.program);
    // Return values may legitimately differ (MiniC mains return 0, MiniPy
    // functions return None); the location sequence and the printed output
    // are the shared observables for all three pairs.
    let same_traces = py_ref.location_sequence() == c_ref.location_sequence()
        && py_ref.traces.iter().zip(&c_ref.traces).all(|(a, b)| a.output() == b.output());
    PairReport { same_signature, same_traces, minipy: run_side(py, config), minic: run_side(c, config) }
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let config = if mode.smoke {
        DatasetConfig { correct_count: 10, incorrect_count: 5, seed: 0xFACADE, ..DatasetConfig::default() }
    } else {
        DatasetConfig { correct_count: 40, incorrect_count: 20, seed: 0xFACADE, ..DatasetConfig::default() }
    };
    let pairs = vec![
        (fibonacci(), fibonacci_c()),
        (special_number(), special_number_c()),
        (reverse_difference(), reverse_difference_c()),
    ];

    let mut report = FrontendsReport {
        corpus: format!(
            "{} correct + {} incorrect per problem per frontend",
            config.correct_count, config.incorrect_count
        ),
        pairs: Vec::new(),
        all_parity: true,
    };
    println!("Frontend parity: one program model, two source languages");
    for (py, c) in &pairs {
        let pair = run_pair(py, c, config);
        println!(
            "  {} / {}: signature parity {}, trace parity {} — minipy {}/{} repaired ({:.1} ms avg), minic {}/{} repaired ({:.1} ms avg)",
            py.name,
            c.name,
            pair.same_signature,
            pair.same_traces,
            pair.minipy.repaired,
            pair.minipy.attempts,
            pair.minipy.avg_repair_seconds * 1e3,
            pair.minic.repaired,
            pair.minic.attempts,
            pair.minic.avg_repair_seconds * 1e3,
        );
        report.all_parity &= pair.same_signature && pair.same_traces;
        report.pairs.push(pair);
    }
    // Sanity: a sample of MiniC feedback must be C-flavoured when present.
    for pair in &report.pairs {
        for line in &pair.minic.feedback_sample {
            assert!(!line.contains(" and "), "MiniC feedback leaked Python syntax: {line}");
        }
    }
    assert!(report.all_parity, "reference pairs must lower to isomorphic models");

    emit_json_report("frontends", mode, &report);
}
