//! End-to-end repair throughput: attempts repaired per second on the
//! synthetic corpus.
//!
//! This is the trajectory benchmark for the matching/repair hot path (the
//! cost the paper's §6.2 scalability claim rests on): it clusters the
//! correct pool once per problem, repairs every incorrect attempt, and
//! reports attempts-repaired-per-second overall and per problem. In
//! `--smoke` mode the JSON report (with a top-level `repairs_per_sec`
//! field) is mirrored to stdout and `BENCH_throughput.json`.

use clara_bench::{emit_json_report, run_clara, RunMode};
use clara_corpus::mooc::all_mooc_problems;
use serde::Serialize;

#[derive(Serialize)]
struct ProblemThroughput {
    problem: String,
    correct: usize,
    clusters: usize,
    attempts: usize,
    repaired: usize,
    clustering_seconds: f64,
    repair_seconds: f64,
    repairs_per_sec: f64,
}

#[derive(Serialize)]
struct ThroughputReport {
    corpus: String,
    attempts: usize,
    repaired: usize,
    clustering_seconds: f64,
    repair_seconds: f64,
    /// Attempts repaired per second of repair time, across all problems.
    repairs_per_sec: f64,
    problems: Vec<ProblemThroughput>,
}

fn per_sec(count: usize, seconds: f64) -> f64 {
    if seconds > 0.0 {
        count as f64 / seconds
    } else {
        0.0
    }
}

fn main() {
    let mode = RunMode::from_env_and_args();
    let scale = mode.scale();
    println!("Repair throughput — attempts repaired per second ({}):", mode.corpus_label(scale));
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>12} {:>12} {:>14}",
        "problem", "#correct", "clusters", "attempts", "repaired", "cluster s", "repair s", "repairs/s"
    );

    let mut problems = Vec::new();
    let (mut attempts, mut repaired) = (0usize, 0usize);
    let (mut clustering_seconds, mut repair_seconds) = (0f64, 0f64);

    for problem in mode.problems(all_mooc_problems()) {
        let dataset = mode.dataset(&problem, scale, 0x7432);
        let run = run_clara(&dataset);
        let row = ProblemThroughput {
            problem: run.problem.clone(),
            correct: run.correct,
            clusters: run.clusters,
            attempts: run.attempts.len(),
            repaired: run.repaired_count(),
            clustering_seconds: run.clustering_seconds,
            repair_seconds: run.attempts.iter().map(|a| a.seconds).sum(),
            repairs_per_sec: 0.0,
        };
        let row = ProblemThroughput { repairs_per_sec: per_sec(row.repaired, row.repair_seconds), ..row };
        println!(
            "{:<20} {:>9} {:>9} {:>9} {:>9} {:>12.3} {:>12.3} {:>14.1}",
            row.problem,
            row.correct,
            row.clusters,
            row.attempts,
            row.repaired,
            row.clustering_seconds,
            row.repair_seconds,
            row.repairs_per_sec,
        );
        attempts += row.attempts;
        repaired += row.repaired;
        clustering_seconds += row.clustering_seconds;
        repair_seconds += row.repair_seconds;
        problems.push(row);
    }

    let report = ThroughputReport {
        corpus: mode.corpus_label(scale),
        attempts,
        repaired,
        clustering_seconds,
        repair_seconds,
        repairs_per_sec: per_sec(repaired, repair_seconds),
        problems,
    };
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>12.3} {:>12.3} {:>14.1}",
        "Total",
        "-",
        "-",
        report.attempts,
        report.repaired,
        report.clustering_seconds,
        report.repair_seconds,
        report.repairs_per_sec,
    );
    println!();
    println!("The paper reports ~3s median repair time per attempt (§6.2); this bench tracks");
    println!("the reproduction's end-to-end throughput trajectory across PRs.");

    emit_json_report("throughput", mode, &report);
}
