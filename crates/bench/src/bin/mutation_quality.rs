//! Differential repair oracle over generated buggy corpora
//! (`BENCH_mutation.json`).
//!
//! For every problem the surface-IR mutation engine derives buggy variants
//! of the correct seeds, the grader sorts them into `still-correct` /
//! `wrong-answer` / `crashes-or-diverges` buckets, and the differential
//! oracle runs the full cluster → match → repair pipeline on each
//! wrong-answer variant, asserting **soundness** (a claimed repair must make
//! the specification pass — Theorem 5.3 made executable) and reporting
//! repair rate and mean relative patch size *per mutation operator*.
//!
//! The binary exits non-zero on any soundness violation, so the CI
//! bench-smoke job fails if the pipeline ever claims an unsound repair. In
//! `--smoke` mode it also enforces the corpus contract: ≥ 25 distinct
//! wrong-answer mutants per problem across ≥ 2 problems in each language.

use clara_bench::{emit_json_report, RunMode};
use clara_core::{ClaraConfig, DifferentialOracle, OracleVerdict};
use clara_corpus::minic::{fibonacci_c, special_number_c};
use clara_corpus::study::{fibonacci, special_number};
use clara_corpus::{
    all_problems_all_langs, derive_mutants, MutantBucket, MutationConfig, MutationOp, Problem, SurfaceMutant,
};
use serde::Serialize;

/// Per-operator aggregate over one problem's mutants.
#[derive(Serialize, Default, Clone)]
struct OperatorReport {
    op: String,
    generated: usize,
    still_correct: usize,
    wrong_answer: usize,
    crashes_or_diverges: usize,
    repaired: usize,
    unsupported: usize,
    soundness_violations: usize,
    repair_rate: f64,
    mean_relative_patch_size: f64,
}

#[derive(Serialize)]
struct ProblemReport {
    problem: String,
    lang: String,
    seeds: usize,
    usable_references: usize,
    mutants: usize,
    distinct_wrong_answer: usize,
    still_correct: usize,
    crashes_or_diverges: usize,
    mutation_attempts: usize,
    operators: Vec<OperatorReport>,
    soundness_violations: usize,
}

#[derive(Serialize)]
struct MutationQualityReport {
    corpus: String,
    problems: Vec<ProblemReport>,
    total_wrong_answer: usize,
    total_repaired: usize,
    total_soundness_violations: usize,
}

fn run_problem(problem: &Problem, config: &MutationConfig) -> ProblemReport {
    let (mutants, stats) = derive_mutants(problem, config);
    let (oracle, usable) = DifferentialOracle::new(
        problem.lang,
        problem.spec.clone(),
        problem.seeds.iter().copied(),
        ClaraConfig::default(),
    );

    let mut operators: Vec<OperatorReport> = MutationOp::all()
        .iter()
        .map(|op| OperatorReport { op: op.name().to_owned(), ..OperatorReport::default() })
        .collect();
    let index_of = |op: MutationOp| MutationOp::all().iter().position(|o| *o == op).expect("catalog op");

    let mut violations = 0usize;
    let mut relative_sizes: Vec<Vec<f64>> = vec![Vec::new(); operators.len()];
    for mutant in &mutants {
        let entry = &mut operators[index_of(mutant.op)];
        entry.generated += 1;
        match mutant.bucket {
            MutantBucket::StillCorrect => entry.still_correct += 1,
            MutantBucket::WrongAnswer => entry.wrong_answer += 1,
            MutantBucket::CrashesOrDiverges => entry.crashes_or_diverges += 1,
        }
        if mutant.bucket != MutantBucket::WrongAnswer {
            continue;
        }
        match oracle.check(&mutant.source) {
            OracleVerdict::Repaired(check) => {
                // An unsound claim is a pipeline bug, not a repair: it must
                // not inflate the per-operator repair rate it invalidates.
                if check.sound {
                    entry.repaired += 1;
                    if check.relative_size.is_finite() {
                        relative_sizes[index_of(mutant.op)].push(check.relative_size);
                    }
                } else {
                    entry.soundness_violations += 1;
                    violations += 1;
                    eprintln!(
                        "SOUNDNESS VIOLATION [{} / {}]:\n{}",
                        problem.name,
                        mutant.op.name(),
                        mutant.source
                    );
                }
            }
            OracleVerdict::Unsupported => entry.unsupported += 1,
            OracleVerdict::NotRepaired { .. } => {}
        }
    }
    for (entry, sizes) in operators.iter_mut().zip(&relative_sizes) {
        entry.repair_rate =
            if entry.wrong_answer > 0 { entry.repaired as f64 / entry.wrong_answer as f64 } else { 0.0 };
        entry.mean_relative_patch_size =
            if sizes.is_empty() { 0.0 } else { sizes.iter().sum::<f64>() / sizes.len() as f64 };
    }
    operators.retain(|o| o.generated > 0);

    let bucket_count = |b: MutantBucket| mutants.iter().filter(|m: &&SurfaceMutant| m.bucket == b).count();
    ProblemReport {
        problem: problem.name.to_owned(),
        lang: problem.lang.as_str().to_owned(),
        seeds: problem.seeds.len(),
        usable_references: usable,
        mutants: mutants.len(),
        distinct_wrong_answer: bucket_count(MutantBucket::WrongAnswer),
        still_correct: bucket_count(MutantBucket::StillCorrect),
        crashes_or_diverges: bucket_count(MutantBucket::CrashesOrDiverges),
        mutation_attempts: stats.attempts,
        operators,
        soundness_violations: violations,
    }
}

fn main() {
    let mode = RunMode::from_env_and_args();
    // Smoke: two problems per language, the acceptance floor of 25
    // wrong-answer mutants each. Full: every problem of every frontend with
    // a deeper pool.
    let (problems, config) = if mode.smoke {
        (
            vec![fibonacci(), special_number(), fibonacci_c(), special_number_c()],
            MutationConfig { seed: 0xB0661E5, target_wrong_answer: 25, max_attempts: 4_000 },
        )
    } else {
        (
            all_problems_all_langs(),
            MutationConfig { seed: 0xB0661E5, target_wrong_answer: 60, max_attempts: 10_000 },
        )
    };

    let mut report = MutationQualityReport {
        corpus: format!(
            "{} problems, ≥{} wrong-answer mutants each (mutation seed {:#x})",
            problems.len(),
            config.target_wrong_answer,
            config.seed
        ),
        problems: Vec::new(),
        total_wrong_answer: 0,
        total_repaired: 0,
        total_soundness_violations: 0,
    };

    println!("Differential repair oracle over generated buggy corpora:");
    for problem in &problems {
        let problem_report = run_problem(problem, &config);
        let repaired: usize = problem_report.operators.iter().map(|o| o.repaired).sum();
        println!(
            "  {:22} [{}]: {:3} mutants ({} wrong-answer / {} still-correct / {} diverging), {} repaired, {} violations",
            problem_report.problem,
            problem_report.lang,
            problem_report.mutants,
            problem_report.distinct_wrong_answer,
            problem_report.still_correct,
            problem_report.crashes_or_diverges,
            repaired,
            problem_report.soundness_violations,
        );
        for op in &problem_report.operators {
            if op.wrong_answer > 0 {
                println!(
                    "      {:20} {:3} wrong-answer, repair rate {:>5.1}%, mean relative patch {:.3}",
                    op.op,
                    op.wrong_answer,
                    100.0 * op.repair_rate,
                    op.mean_relative_patch_size,
                );
            }
        }
        report.total_wrong_answer += problem_report.distinct_wrong_answer;
        report.total_repaired += repaired;
        report.total_soundness_violations += problem_report.soundness_violations;
        report.problems.push(problem_report);
    }
    println!(
        "TOTAL: {} wrong-answer mutants, {} repaired, {} soundness violations",
        report.total_wrong_answer, report.total_repaired, report.total_soundness_violations
    );

    if mode.smoke {
        // The corpus contract of the smoke gate: every problem reaches the
        // 25-distinct floor and both languages field ≥ 2 problems.
        for problem in &report.problems {
            assert!(
                problem.distinct_wrong_answer >= 25,
                "{}: only {} distinct wrong-answer mutants",
                problem.problem,
                problem.distinct_wrong_answer
            );
        }
        for lang in ["minipy", "minic"] {
            let count = report.problems.iter().filter(|p| p.lang == lang).count();
            assert!(count >= 2, "smoke must cover ≥2 {lang} problems, has {count}");
        }
    }

    emit_json_report("mutation", mode, &report);

    if report.total_soundness_violations > 0 {
        eprintln!(
            "{} soundness violations: the repair pipeline claimed repairs that fail the spec",
            report.total_soundness_violations
        );
        std::process::exit(1);
    }
}
