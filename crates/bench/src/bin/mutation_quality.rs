//! Differential repair oracle over generated buggy corpora
//! (`BENCH_mutation.json`).
//!
//! For every problem the surface-IR mutation engine derives buggy variants
//! of the correct seeds, the grader sorts them into `still-correct` /
//! `wrong-answer` / `crashes-or-diverges` buckets, and the differential
//! oracle runs the full cluster → match → repair pipeline on each
//! wrong-answer variant, asserting **soundness** (a claimed repair must make
//! the specification pass — Theorem 5.3 made executable) and reporting
//! repair rate and mean relative patch size *per mutation operator*.
//!
//! The binary exits non-zero on any soundness violation, so the CI
//! bench-smoke job fails if the pipeline ever claims an unsound repair. In
//! `--smoke` mode it also enforces the corpus contract: ≥ 25 distinct
//! wrong-answer mutants per problem across ≥ 2 problems in each language.

use clara_bench::{emit_json_report, RunMode};
use clara_core::{ClaraConfig, DifferentialOracle, OracleVerdict};
use clara_corpus::minic::{fibonacci_c, special_number_c};
use clara_corpus::study::{fibonacci, special_number};
use clara_corpus::{
    all_problems_all_langs, derive_mutants, minimize_steps, replay_steps, save_regression_file,
    MultiFaultConfig, MutantBucket, MutationConfig, MutationOp, Problem, RegressionEntry, RegressionFile,
    RegressionStep, SurfaceMutant, REGRESSION_FORMAT_VERSION,
};
use serde::Serialize;

/// Per-operator aggregate over one problem's mutants.
#[derive(Serialize, Default, Clone)]
struct OperatorReport {
    op: String,
    generated: usize,
    still_correct: usize,
    wrong_answer: usize,
    crashes_or_diverges: usize,
    repaired: usize,
    unsupported: usize,
    soundness_violations: usize,
    repair_rate: f64,
    mean_relative_patch_size: f64,
}

#[derive(Serialize)]
struct ProblemReport {
    problem: String,
    lang: String,
    seeds: usize,
    usable_references: usize,
    mutants: usize,
    distinct_wrong_answer: usize,
    still_correct: usize,
    crashes_or_diverges: usize,
    mutation_attempts: usize,
    operators: Vec<OperatorReport>,
    soundness_violations: usize,
}

/// Per-problem aggregate of the multi-fault adversary: 2–4-operator chains,
/// every killed mutant delta-debugged to its smallest still-failing core.
#[derive(Serialize)]
struct MultiFaultProblemReport {
    problem: String,
    lang: String,
    chains_generated: usize,
    wrong_answer: usize,
    distinct_minimized: usize,
    chains_shrunk: usize,
    mean_original_chain_len: f64,
    mean_minimized_core_len: f64,
    repaired: usize,
    soundness_violations: usize,
}

#[derive(Serialize)]
struct MultiFaultReport {
    problems: Vec<MultiFaultProblemReport>,
    distinct_minimized_total: usize,
    soundness_violations: usize,
}

/// Per-problem repair rate on the loop-structure-divergent pool, with the
/// flexible-alignment fallback off (the committed baseline) and on.
#[derive(Serialize)]
struct StructureDivergentProblemReport {
    problem: String,
    lang: String,
    wrong_answer: usize,
    baseline_repaired: usize,
    aligned_repaired: usize,
    realigned_repairs: usize,
    soundness_violations: usize,
}

#[derive(Serialize)]
struct StructureDivergentReport {
    problems: Vec<StructureDivergentProblemReport>,
    pool_wrong_answer: usize,
    baseline_repaired: usize,
    baseline_repair_rate: f64,
    aligned_repaired: usize,
    aligned_repair_rate: f64,
    soundness_violations: usize,
}

#[derive(Serialize)]
struct MutationQualityReport {
    corpus: String,
    problems: Vec<ProblemReport>,
    total_wrong_answer: usize,
    total_repaired: usize,
    multi_fault: MultiFaultReport,
    structure_divergent: StructureDivergentReport,
    total_soundness_violations: usize,
}

fn run_problem(problem: &Problem, config: &MutationConfig) -> ProblemReport {
    let (mutants, stats) = derive_mutants(problem, config);
    let (oracle, usable) = DifferentialOracle::new(
        problem.lang,
        problem.spec.clone(),
        problem.seeds.iter().copied(),
        ClaraConfig::default(),
    );

    let mut operators: Vec<OperatorReport> = MutationOp::all()
        .iter()
        .map(|op| OperatorReport { op: op.name().to_owned(), ..OperatorReport::default() })
        .collect();
    let index_of = |op: MutationOp| MutationOp::all().iter().position(|o| *o == op).expect("catalog op");

    let mut violations = 0usize;
    let mut relative_sizes: Vec<Vec<f64>> = vec![Vec::new(); operators.len()];
    for mutant in &mutants {
        let entry = &mut operators[index_of(mutant.op)];
        entry.generated += 1;
        match mutant.bucket {
            MutantBucket::StillCorrect => entry.still_correct += 1,
            MutantBucket::WrongAnswer => entry.wrong_answer += 1,
            MutantBucket::CrashesOrDiverges => entry.crashes_or_diverges += 1,
        }
        if mutant.bucket != MutantBucket::WrongAnswer {
            continue;
        }
        match oracle.check(&mutant.source) {
            OracleVerdict::Repaired(check) => {
                // An unsound claim is a pipeline bug, not a repair: it must
                // not inflate the per-operator repair rate it invalidates.
                if check.sound {
                    entry.repaired += 1;
                    if check.relative_size.is_finite() {
                        relative_sizes[index_of(mutant.op)].push(check.relative_size);
                    }
                } else {
                    entry.soundness_violations += 1;
                    violations += 1;
                    eprintln!(
                        "SOUNDNESS VIOLATION [{} / {}]:\n{}",
                        problem.name,
                        mutant.op.name(),
                        mutant.source
                    );
                }
            }
            OracleVerdict::Unsupported => entry.unsupported += 1,
            OracleVerdict::NotRepaired { .. } => {}
        }
    }
    for (entry, sizes) in operators.iter_mut().zip(&relative_sizes) {
        entry.repair_rate =
            if entry.wrong_answer > 0 { entry.repaired as f64 / entry.wrong_answer as f64 } else { 0.0 };
        entry.mean_relative_patch_size =
            if sizes.is_empty() { 0.0 } else { sizes.iter().sum::<f64>() / sizes.len() as f64 };
    }
    operators.retain(|o| o.generated > 0);

    let bucket_count = |b: MutantBucket| mutants.iter().filter(|m: &&SurfaceMutant| m.bucket == b).count();
    ProblemReport {
        problem: problem.name.to_owned(),
        lang: problem.lang.as_str().to_owned(),
        seeds: problem.seeds.len(),
        usable_references: usable,
        mutants: mutants.len(),
        distinct_wrong_answer: bucket_count(MutantBucket::WrongAnswer),
        still_correct: bucket_count(MutantBucket::StillCorrect),
        crashes_or_diverges: bucket_count(MutantBucket::CrashesOrDiverges),
        mutation_attempts: stats.attempts,
        operators,
        soundness_violations: violations,
    }
}

/// Builds the problem's differential oracle with the flexible-alignment
/// fallback on or off (the before/after axis of the structure-divergent
/// section).
fn oracle_for(problem: &Problem, flexible: bool) -> DifferentialOracle {
    let mut config = ClaraConfig::default();
    config.repair.flexible_alignment = flexible;
    let (oracle, _) =
        DifferentialOracle::new(problem.lang, problem.spec.clone(), problem.seeds.iter().copied(), config);
    oracle
}

/// Most minimized mutants promoted into one problem's regression corpus
/// file — keeps the committed JSON reviewable.
const MAX_PROMOTED: usize = 25;

fn run_multi_fault(
    problem: &Problem,
    config: &MultiFaultConfig,
    corpus_out: &mut Vec<RegressionFile>,
) -> MultiFaultProblemReport {
    let (mutants, _) = clara_corpus::derive_multi_fault_mutants(problem, config);
    let oracle = oracle_for(problem, true);
    let mut seen = std::collections::HashSet::new();
    let mut entries: Vec<RegressionEntry> = Vec::new();
    let mut wrong_answer = 0usize;
    let mut distinct = 0usize;
    let mut shrunk = 0usize;
    let mut repaired = 0usize;
    let mut violations = 0usize;
    let mut original_len = 0usize;
    let mut core_len = 0usize;
    for mutant in mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer) {
        wrong_answer += 1;
        // Delta-debug the chain down to its smallest still-failing core.
        let core = minimize_steps(problem, mutant.seed_index, &mutant.steps);
        original_len += mutant.steps.len();
        core_len += core.len();
        if core.len() < mutant.steps.len() {
            shrunk += 1;
        }
        let Some((source, hash)) = replay_steps(problem, mutant.seed_index, &core) else {
            continue;
        };
        if !seen.insert(hash) {
            continue;
        }
        distinct += 1;
        let mut entry_repaired = false;
        match oracle.check(&source) {
            OracleVerdict::Repaired(check) if check.sound => {
                entry_repaired = true;
                repaired += 1;
            }
            OracleVerdict::Repaired(_) => {
                violations += 1;
                eprintln!("SOUNDNESS VIOLATION [{} / multi-fault]:\n{source}", problem.name);
            }
            _ => {}
        }
        if entries.len() < MAX_PROMOTED {
            entries.push(RegressionEntry {
                seed_index: mutant.seed_index,
                steps: core
                    .iter()
                    .map(|s| RegressionStep { op: s.op.name().to_owned(), seed: s.seed })
                    .collect(),
                source,
                structural_hash: hash,
                repaired: entry_repaired,
            });
        }
    }
    corpus_out.push(RegressionFile {
        version: REGRESSION_FORMAT_VERSION,
        problem: problem.name.to_owned(),
        lang: problem.lang.as_str().to_owned(),
        mutation_seed: config.seed,
        entries,
    });
    let mean = |sum: usize| if wrong_answer == 0 { 0.0 } else { sum as f64 / wrong_answer as f64 };
    MultiFaultProblemReport {
        problem: problem.name.to_owned(),
        lang: problem.lang.as_str().to_owned(),
        chains_generated: mutants.len(),
        wrong_answer,
        distinct_minimized: distinct,
        chains_shrunk: shrunk,
        mean_original_chain_len: mean(original_len),
        mean_minimized_core_len: mean(core_len),
        repaired,
        soundness_violations: violations,
    }
}

fn run_structure_divergent(problem: &Problem, config: &MultiFaultConfig) -> StructureDivergentProblemReport {
    // The pool this PR exists for: every chain leads with a structural
    // operator (duplicate-loop / guard-loop), so the killed mutants diverge
    // in control flow from the seeds they came from.
    let pool_config = MultiFaultConfig { require_structural: true, ..*config };
    let (mutants, _) = clara_corpus::derive_multi_fault_mutants(problem, &pool_config);
    let baseline_oracle = oracle_for(problem, false);
    let aligned_oracle = oracle_for(problem, true);
    let mut report = StructureDivergentProblemReport {
        problem: problem.name.to_owned(),
        lang: problem.lang.as_str().to_owned(),
        wrong_answer: 0,
        baseline_repaired: 0,
        aligned_repaired: 0,
        realigned_repairs: 0,
        soundness_violations: 0,
    };
    for mutant in mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer) {
        report.wrong_answer += 1;
        for (oracle, aligned) in [(&baseline_oracle, false), (&aligned_oracle, true)] {
            match oracle.check(&mutant.source) {
                OracleVerdict::Repaired(check) if check.sound => {
                    if aligned {
                        report.aligned_repaired += 1;
                        if check.realigned {
                            report.realigned_repairs += 1;
                        }
                    } else {
                        report.baseline_repaired += 1;
                    }
                }
                OracleVerdict::Repaired(_) => {
                    report.soundness_violations += 1;
                    eprintln!(
                        "SOUNDNESS VIOLATION [{} / structure-divergent, alignment={aligned}]:\n{}",
                        problem.name, mutant.source
                    );
                }
                _ => {}
            }
        }
    }
    report
}

fn main() {
    let mode = RunMode::from_env_and_args();
    // Smoke: two problems per language, the acceptance floor of 25
    // wrong-answer mutants each. Full: every problem of every frontend with
    // a deeper pool.
    let (problems, config) = if mode.smoke {
        (
            vec![fibonacci(), special_number(), fibonacci_c(), special_number_c()],
            MutationConfig { seed: 0xB0661E5, target_wrong_answer: 25, max_attempts: 4_000 },
        )
    } else {
        (
            all_problems_all_langs(),
            MutationConfig { seed: 0xB0661E5, target_wrong_answer: 60, max_attempts: 10_000 },
        )
    };

    let multi_config = if mode.smoke {
        MultiFaultConfig { target_wrong_answer: 55, max_attempts: 10_000, ..MultiFaultConfig::default() }
    } else {
        MultiFaultConfig { target_wrong_answer: 60, max_attempts: 12_000, ..MultiFaultConfig::default() }
    };

    let mut report = MutationQualityReport {
        corpus: format!(
            "{} problems, ≥{} wrong-answer mutants each (mutation seed {:#x})",
            problems.len(),
            config.target_wrong_answer,
            config.seed
        ),
        problems: Vec::new(),
        total_wrong_answer: 0,
        total_repaired: 0,
        multi_fault: MultiFaultReport {
            problems: Vec::new(),
            distinct_minimized_total: 0,
            soundness_violations: 0,
        },
        structure_divergent: StructureDivergentReport {
            problems: Vec::new(),
            pool_wrong_answer: 0,
            baseline_repaired: 0,
            baseline_repair_rate: 0.0,
            aligned_repaired: 0,
            aligned_repair_rate: 0.0,
            soundness_violations: 0,
        },
        total_soundness_violations: 0,
    };

    println!("Differential repair oracle over generated buggy corpora:");
    for problem in &problems {
        let problem_report = run_problem(problem, &config);
        let repaired: usize = problem_report.operators.iter().map(|o| o.repaired).sum();
        println!(
            "  {:22} [{}]: {:3} mutants ({} wrong-answer / {} still-correct / {} diverging), {} repaired, {} violations",
            problem_report.problem,
            problem_report.lang,
            problem_report.mutants,
            problem_report.distinct_wrong_answer,
            problem_report.still_correct,
            problem_report.crashes_or_diverges,
            repaired,
            problem_report.soundness_violations,
        );
        for op in &problem_report.operators {
            if op.wrong_answer > 0 {
                println!(
                    "      {:20} {:3} wrong-answer, repair rate {:>5.1}%, mean relative patch {:.3}",
                    op.op,
                    op.wrong_answer,
                    100.0 * op.repair_rate,
                    op.mean_relative_patch_size,
                );
            }
        }
        report.total_wrong_answer += problem_report.distinct_wrong_answer;
        report.total_repaired += repaired;
        report.total_soundness_violations += problem_report.soundness_violations;
        report.problems.push(problem_report);
    }
    println!(
        "TOTAL: {} wrong-answer mutants, {} repaired, {} soundness violations",
        report.total_wrong_answer, report.total_repaired, report.total_soundness_violations
    );

    // Multi-fault adversary: 2–4-operator chains, delta-debugged cores,
    // distinct minimized mutants promoted into the regression corpus.
    println!("Multi-fault chains (2–4 composed operators, minimized cores):");
    let mut corpus_files: Vec<RegressionFile> = Vec::new();
    for problem in &problems {
        let section = run_multi_fault(problem, &multi_config, &mut corpus_files);
        println!(
            "  {:22} [{}]: {} chains, {} killed, {} distinct minimized ({} shrunk, mean {:.2}→{:.2} ops), {} repaired, {} violations",
            section.problem,
            section.lang,
            section.chains_generated,
            section.wrong_answer,
            section.distinct_minimized,
            section.chains_shrunk,
            section.mean_original_chain_len,
            section.mean_minimized_core_len,
            section.repaired,
            section.soundness_violations,
        );
        report.multi_fault.distinct_minimized_total += section.distinct_minimized;
        report.multi_fault.soundness_violations += section.soundness_violations;
        report.multi_fault.problems.push(section);
    }
    println!(
        "  multi-fault TOTAL: {} distinct minimized mutants, {} violations",
        report.multi_fault.distinct_minimized_total, report.multi_fault.soundness_violations
    );

    // The regression corpus is regenerated on demand (CLARA_WRITE_REGRESSION=1)
    // so promotion stays an explicit, reviewable act; CI replays the
    // committed files instead of rewriting them.
    if std::env::var_os("CLARA_WRITE_REGRESSION").is_some() {
        let dir = clara_corpus::regression_dir();
        for file in &corpus_files {
            match save_regression_file(&dir, file) {
                Ok(path) => eprintln!("(regression corpus written to {})", path.display()),
                Err(e) => eprintln!("(could not write regression corpus for {}: {e})", file.problem),
            }
        }
    }

    // Structure-divergent pool: repair rate before/after flexible alignment.
    println!("Structure-divergent pool (chains led by duplicate-loop/guard-loop):");
    for problem in &problems {
        let section = run_structure_divergent(problem, &multi_config);
        println!(
            "  {:22} [{}]: {} killed, baseline {} repaired, aligned {} repaired ({} via realignment), {} violations",
            section.problem,
            section.lang,
            section.wrong_answer,
            section.baseline_repaired,
            section.aligned_repaired,
            section.realigned_repairs,
            section.soundness_violations,
        );
        report.structure_divergent.pool_wrong_answer += section.wrong_answer;
        report.structure_divergent.baseline_repaired += section.baseline_repaired;
        report.structure_divergent.aligned_repaired += section.aligned_repaired;
        report.structure_divergent.soundness_violations += section.soundness_violations;
        report.structure_divergent.problems.push(section);
    }
    let rate = |repaired: usize| {
        if report.structure_divergent.pool_wrong_answer == 0 {
            0.0
        } else {
            repaired as f64 / report.structure_divergent.pool_wrong_answer as f64
        }
    };
    report.structure_divergent.baseline_repair_rate = rate(report.structure_divergent.baseline_repaired);
    report.structure_divergent.aligned_repair_rate = rate(report.structure_divergent.aligned_repaired);
    println!(
        "  structure-divergent TOTAL: {} killed, repair rate {:.1}% → {:.1}% with alignment",
        report.structure_divergent.pool_wrong_answer,
        100.0 * report.structure_divergent.baseline_repair_rate,
        100.0 * report.structure_divergent.aligned_repair_rate,
    );
    report.total_soundness_violations +=
        report.multi_fault.soundness_violations + report.structure_divergent.soundness_violations;

    if mode.smoke {
        // The corpus contract of the smoke gate: every problem reaches the
        // 25-distinct floor and both languages field ≥ 2 problems.
        for problem in &report.problems {
            assert!(
                problem.distinct_wrong_answer >= 25,
                "{}: only {} distinct wrong-answer mutants",
                problem.problem,
                problem.distinct_wrong_answer
            );
        }
        for lang in ["minipy", "minic"] {
            let count = report.problems.iter().filter(|p| p.lang == lang).count();
            assert!(count >= 2, "smoke must cover ≥2 {lang} problems, has {count}");
        }
        // The multi-fault contract: ≥100 distinct minimized 2–4-fault
        // mutants across both languages, none of them repaired unsoundly.
        assert!(
            report.multi_fault.distinct_minimized_total >= 100,
            "only {} distinct minimized multi-fault mutants (need ≥100)",
            report.multi_fault.distinct_minimized_total
        );
        for lang in ["minipy", "minic"] {
            let count: usize = report
                .multi_fault
                .problems
                .iter()
                .filter(|p| p.lang == lang)
                .map(|p| p.distinct_minimized)
                .sum();
            assert!(count > 0, "no minimized multi-fault mutants in {lang}");
        }
        // The alignment contract: flexible alignment must strictly improve
        // the repair rate on the structure-divergent pool.
        assert!(
            report.structure_divergent.aligned_repaired > report.structure_divergent.baseline_repaired,
            "flexible alignment did not improve the structure-divergent repair rate \
             (baseline {}, aligned {})",
            report.structure_divergent.baseline_repaired,
            report.structure_divergent.aligned_repaired
        );
    }

    emit_json_report("mutation", mode, &report);

    if report.total_soundness_violations > 0 {
        eprintln!(
            "{} soundness violations: the repair pipeline claimed repairs that fail the spec",
            report.total_soundness_violations
        );
        std::process::exit(1);
    }
}
