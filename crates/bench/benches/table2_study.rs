//! Criterion bench behind **Table 2**: interactive feedback generation for a
//! user-study problem (clustering an existing pool once, then repairing a
//! fresh attempt, which is what the web front-end did per submission).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clara_core::{Clara, ClaraConfig};
use clara_corpus::study::{fibonacci, trapezoid};
use clara_corpus::{generate_dataset, DatasetConfig, Problem};

fn engine_for(problem: &Problem, correct: usize) -> Clara {
    let dataset = generate_dataset(
        problem,
        DatasetConfig { correct_count: correct, incorrect_count: 0, seed: 101, ..DatasetConfig::default() },
    );
    let mut clara = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
    for attempt in &dataset.correct {
        let _ = clara.add_correct_solution(&attempt.source);
    }
    clara
}

fn first_incorrect(problem: &Problem) -> String {
    let dataset = generate_dataset(
        problem,
        DatasetConfig { correct_count: 1, incorrect_count: 5, seed: 202, ..DatasetConfig::default() },
    );
    dataset
        .incorrect
        .iter()
        .find(|a| clara_lang::parse_program(&a.source).is_ok())
        .map(|a| a.source.clone())
        .expect("an incorrect attempt exists")
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_interactive_feedback");
    group.sample_size(10);
    for problem in [fibonacci(), trapezoid()] {
        let clara = engine_for(&problem, 25);
        let attempt = first_incorrect(&problem);
        group
            .bench_function(problem.name, |b| b.iter(|| black_box(clara.repair_source(black_box(&attempt)))));
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
