//! Criterion bench behind **Table 1**: end-to-end repair of one incorrect
//! MOOC attempt against a realistic cluster pool (the per-attempt repair time
//! column).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clara_core::{repair_attempt, AnalyzedProgram, RepairConfig};
use clara_corpus::mooc::{derivatives, odd_tuples};
use clara_corpus::{generate_dataset, DatasetConfig, Problem};
use clara_model::Fuel;

fn cluster_pool(problem: &Problem, correct: usize) -> Vec<clara_core::Cluster> {
    let dataset = generate_dataset(
        problem,
        DatasetConfig { correct_count: correct, incorrect_count: 0, seed: 21, ..DatasetConfig::default() },
    );
    let analyzed: Vec<_> = dataset
        .correct
        .iter()
        .filter_map(|a| {
            AnalyzedProgram::from_text(&a.source, problem.entry, &problem.inputs(), Fuel::default()).ok()
        })
        .collect();
    clara_core::cluster_programs(analyzed)
}

fn incorrect_attempt(problem: &Problem) -> AnalyzedProgram {
    let dataset = generate_dataset(
        problem,
        DatasetConfig { correct_count: 1, incorrect_count: 6, seed: 33, ..DatasetConfig::default() },
    );
    let attempt = dataset
        .incorrect
        .iter()
        .find(|a| {
            AnalyzedProgram::from_text(&a.source, problem.entry, &problem.inputs(), Fuel::default()).is_ok()
        })
        .expect("at least one analysable incorrect attempt");
    AnalyzedProgram::from_text(&attempt.source, problem.entry, &problem.inputs(), Fuel::default()).unwrap()
}

fn bench_table1_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_end_to_end_repair");
    group.sample_size(10);
    for problem in [derivatives(), odd_tuples()] {
        let clusters = cluster_pool(&problem, 30);
        let attempt = incorrect_attempt(&problem);
        let inputs = problem.inputs();
        let config = RepairConfig::default();
        group.bench_function(problem.name, |b| {
            b.iter(|| black_box(repair_attempt(black_box(&clusters), black_box(&attempt), &inputs, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_repair);
criterion_main!(benches);
