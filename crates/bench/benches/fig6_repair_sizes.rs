//! Criterion bench behind **Figure 6**: computing the relative repair size
//! (repair + tree-edit-distance normalisation) for a batch of incorrect
//! attempts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clara_bench::{build_dataset, run_clara, Scale};
use clara_corpus::mooc::derivatives;

fn bench_fig6(c: &mut Criterion) {
    let problem = derivatives();
    let dataset = build_dataset(&problem, Scale { factor: 0.008 }, 0xF16);
    let mut group = c.benchmark_group("fig6_relative_repair_sizes");
    group.sample_size(10);
    group.bench_function("derivatives_small_corpus", |b| {
        b.iter(|| {
            let run = run_clara(black_box(&dataset));
            let sizes: Vec<f64> = run.attempts.iter().filter_map(|a| a.relative_size).collect();
            black_box(sizes)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
