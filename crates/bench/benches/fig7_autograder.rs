//! Criterion bench behind **Figure 7**: the AutoGrader baseline search on a
//! single- and a multi-fault attempt (its cost explains why the weak error
//! model is used at MOOC scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clara_autograder::{AutoGrader, AutoGraderConfig, ErrorModel};
use clara_corpus::mooc::derivatives;
use clara_lang::parse_program;

const SINGLE_FAULT: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

const DOUBLE_FAULT: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return 0.0
    else:
        return result
";

fn bench_fig7(c: &mut Criterion) {
    let problem = derivatives();
    let single = parse_program(SINGLE_FAULT).unwrap();
    let double = parse_program(DOUBLE_FAULT).unwrap();
    let weak = AutoGrader::mooc_scaled();
    let full = AutoGrader::new(AutoGraderConfig { model: ErrorModel::Full, ..AutoGraderConfig::default() });

    let mut group = c.benchmark_group("fig7_autograder_search");
    group.sample_size(10);
    group.bench_function("weak_model_single_fault", |b| {
        b.iter(|| black_box(weak.repair(black_box(&single), &problem.spec)))
    });
    group.bench_function("weak_model_double_fault", |b| {
        b.iter(|| black_box(weak.repair(black_box(&double), &problem.spec)))
    });
    group.bench_function("full_model_single_fault", |b| {
        b.iter(|| black_box(full.repair(black_box(&single), &problem.spec)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
