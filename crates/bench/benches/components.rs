//! Criterion micro-benchmarks of the individual Clara components backing the
//! timing columns of Table 1/Table 2: matching, clustering, local-repair
//! generation + ILP solving, tree edit distance and the AutoGrader baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clara_autograder::AutoGrader;
use clara_bench::analyze_for_bench;
use clara_core::{cluster_programs, find_matching, repair_attempt, RepairConfig};
use clara_corpus::mooc::derivatives;
use clara_corpus::{generate_dataset, DatasetConfig};
use clara_lang::{parse_expression, parse_program};
use clara_ted::expr_edit_distance;

const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

const I1: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

fn bench_matching(c: &mut Criterion) {
    let problem = derivatives();
    let p = analyze_for_bench(&problem, C1);
    let q = analyze_for_bench(&problem, C2);
    c.bench_function("matching/c1_vs_c2", |b| {
        b.iter(|| black_box(find_matching(black_box(&p), black_box(&q))))
    });
}

fn bench_clustering(c: &mut Criterion) {
    let problem = derivatives();
    let dataset = generate_dataset(
        &problem,
        DatasetConfig { correct_count: 30, incorrect_count: 0, seed: 9, ..DatasetConfig::default() },
    );
    let analyzed: Vec<_> = dataset
        .correct
        .iter()
        .filter_map(|a| {
            clara_core::AnalyzedProgram::from_text(
                &a.source,
                problem.entry,
                &problem.inputs(),
                clara_model::Fuel::default(),
            )
            .ok()
        })
        .collect();
    c.bench_function("clustering/30_correct_solutions", |b| {
        b.iter(|| black_box(cluster_programs(black_box(analyzed.clone()))))
    });
}

fn bench_repair(c: &mut Criterion) {
    let problem = derivatives();
    let clusters = cluster_programs(vec![analyze_for_bench(&problem, C1), analyze_for_bench(&problem, C2)]);
    let attempt = analyze_for_bench(&problem, I1);
    let inputs = problem.inputs();
    let config = RepairConfig { parallel: false, ..RepairConfig::default() };
    c.bench_function("repair/i1_against_one_cluster", |b| {
        b.iter(|| black_box(repair_attempt(black_box(&clusters), black_box(&attempt), &inputs, &config)))
    });
}

fn bench_ted(c: &mut Criterion) {
    let a = parse_expression("result + [float(e) * poly[e]]").unwrap();
    let b_expr = parse_expression("append(result, float(poly[e] * e))").unwrap();
    c.bench_function("ted/loop_body_expressions", |b| {
        b.iter(|| black_box(expr_edit_distance(black_box(&a), black_box(&b_expr))))
    });
}

fn bench_autograder(c: &mut Criterion) {
    let problem = derivatives();
    let attempt = parse_program(I1).unwrap();
    let grader = AutoGrader::mooc_scaled();
    c.bench_function("autograder/i1_weak_model", |b| {
        b.iter(|| black_box(grader.repair(black_box(&attempt), &problem.spec)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matching, bench_clustering, bench_repair, bench_ted, bench_autograder
}
criterion_main!(benches);
