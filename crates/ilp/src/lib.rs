//! # clara-ilp — an exact 0-1 integer linear programming solver
//!
//! Clara selects a minimal-cost consistent set of local repairs by encoding
//! the problem as a Zero-One ILP (Definition 5.5) and handing it to an
//! off-the-shelf solver (`lpsolve` in the original implementation). This
//! crate provides that substrate: a small, exact branch-and-bound solver for
//! 0-1 ILPs with integer coefficients.
//!
//! The solver is exact — it always returns an optimal solution if one exists
//! — and is designed for the problem shapes Clara produces: a few dozen
//! binary variables, "exactly one of these" rows, and implication rows
//! `x_p ≥ x_r`. It nevertheless handles arbitrary `=` / `≥` constraints with
//! integer coefficients.
//!
//! ```rust
//! use clara_ilp::{Cmp, IlpBuilder};
//!
//! // minimise 3a + b subject to a + b = 1
//! let mut ilp = IlpBuilder::new();
//! let a = ilp.add_var("a", 3);
//! let b = ilp.add_var("b", 1);
//! ilp.add_constraint(vec![(a, 1), (b, 1)], Cmp::Eq, 1);
//! let solution = ilp.solve().expect("feasible");
//! assert!(!solution.value(a) && solution.value(b));
//! assert_eq!(solution.objective, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// Index of a 0-1 variable in an [`IlpBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// The linear form must equal the right-hand side.
    Eq,
    /// The linear form must be greater than or equal to the right-hand side.
    Ge,
}

/// A linear constraint `Σ aᵢ·xᵢ (= | ≥) b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The terms `(variable, coefficient)`.
    pub terms: Vec<(VarId, i64)>,
    /// The comparison operator.
    pub cmp: Cmp,
    /// The right-hand side.
    pub rhs: i64,
}

/// A satisfying, objective-minimal assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The value of every variable.
    pub assignment: Vec<bool>,
    /// The objective value of the assignment.
    pub objective: i64,
}

impl Solution {
    /// The value assigned to `var`.
    pub fn value(&self, var: VarId) -> bool {
        self.assignment[var.0]
    }

    /// The variables assigned `true`.
    pub fn selected(&self) -> Vec<VarId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| if v { Some(VarId(i)) } else { None })
            .collect()
    }
}

/// Limits for the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveLimits {
    /// Maximum number of explored branch-and-bound nodes.
    pub max_nodes: u64,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits { max_nodes: 2_000_000 }
    }
}

/// Error returned when the search budget is exhausted before optimality could
/// be proven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExhausted;

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ILP node budget exhausted before proving optimality")
    }
}

impl std::error::Error for BudgetExhausted {}

/// Builder for (and solver of) a 0-1 ILP minimisation problem.
#[derive(Debug, Clone, Default)]
pub struct IlpBuilder {
    names: Vec<String>,
    weights: Vec<i64>,
    constraints: Vec<Constraint>,
}

impl IlpBuilder {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a 0-1 variable with the given objective weight (to be minimised)
    /// and returns its identifier. The name is only used for debugging.
    pub fn add_var(&mut self, name: impl Into<String>, weight: i64) -> VarId {
        self.names.push(name.into());
        self.weights.push(weight);
        VarId(self.names.len() - 1)
    }

    /// Number of variables added so far.
    pub fn var_count(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added so far.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The debug name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.0]
    }

    /// Adds the constraint `Σ coeff·var cmp rhs`.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, i64)>, cmp: Cmp, rhs: i64) {
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Convenience: adds `Σ vars = 1` ("exactly one of").
    pub fn add_exactly_one(&mut self, vars: &[VarId]) {
        self.add_constraint(vars.iter().map(|&v| (v, 1)).collect(), Cmp::Eq, 1);
    }

    /// Convenience: adds the implication `antecedent → consequent`, encoded
    /// as `-antecedent + consequent ≥ 0` (constraint (4) of Definition 5.5).
    pub fn add_implication(&mut self, antecedent: VarId, consequent: VarId) {
        self.add_constraint(vec![(antecedent, -1), (consequent, 1)], Cmp::Ge, 0);
    }

    /// Solves the problem with default limits. Returns `None` if infeasible.
    ///
    /// # Panics
    ///
    /// Panics if the default node budget is exhausted; use
    /// [`IlpBuilder::solve_with_limits`] to handle that case explicitly.
    pub fn solve(&self) -> Option<Solution> {
        self.solve_with_limits(SolveLimits::default()).expect("default ILP node budget exhausted")
    }

    /// Solves the problem. `Ok(None)` means the problem is infeasible.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] if the node budget was reached before the
    /// search completed.
    pub fn solve_with_limits(&self, limits: SolveLimits) -> Result<Option<Solution>, BudgetExhausted> {
        // Var → constraints index so propagation only revisits constraints
        // whose support actually changed.
        let mut constraints_of: Vec<Vec<usize>> = vec![Vec::new(); self.names.len()];
        for (ci, constraint) in self.constraints.iter().enumerate() {
            for &(var, _) in &constraint.terms {
                if !constraints_of[var.0].contains(&ci) {
                    constraints_of[var.0].push(ci);
                }
            }
        }
        let mut solver = Solver {
            problem: self,
            constraints_of,
            assignment: vec![None; self.names.len()],
            in_queue: vec![false; self.constraints.len()],
            best: None,
            nodes: 0,
            limits,
        };
        solver.search(None)?;
        Ok(solver.best)
    }
}

struct Solver<'p> {
    problem: &'p IlpBuilder,
    /// For each variable, the constraints it occurs in.
    constraints_of: Vec<Vec<usize>>,
    assignment: Vec<Option<bool>>,
    /// Scratch de-duplication flags for the propagation worklist.
    in_queue: Vec<bool>,
    best: Option<Solution>,
    nodes: u64,
    limits: SolveLimits,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Propagation {
    /// Propagation completed; the set of forced assignments is recorded in
    /// the trail.
    Ok,
    /// The current partial assignment cannot be extended to a feasible one.
    Conflict,
}

impl Solver<'_> {
    /// Current objective of the fixed part plus an admissible lower bound for
    /// the free part: free variables contribute their weight only if negative
    /// (setting them to 0 is otherwise always possible), and every
    /// unsatisfied `= 1` row over variable-disjoint supports must still pay
    /// for its cheapest free variable. Disjointness (enforced greedily, each
    /// free variable counted for at most one row) keeps the bound admissible:
    /// a single selected variable can satisfy several overlapping rows while
    /// paying its weight once.
    fn lower_bound(&self, counted: &mut [bool]) -> i64 {
        let mut bound = 0;
        for (i, value) in self.assignment.iter().enumerate() {
            counted[i] = false;
            let w = self.problem.weights[i];
            match value {
                Some(true) => bound += w,
                Some(false) => {}
                None => {
                    if w < 0 {
                        bound += w;
                    }
                }
            }
        }
        'rows: for constraint in &self.problem.constraints {
            if constraint.cmp != Cmp::Eq || constraint.rhs != 1 {
                continue;
            }
            let mut fixed_sum = 0i64;
            let mut min_free: Option<i64> = None;
            for &(var, coeff) in &constraint.terms {
                match self.assignment[var.0] {
                    Some(true) => fixed_sum += coeff,
                    Some(false) => {}
                    None => {
                        if counted[var.0] {
                            // Overlaps a row already counted; skip the row.
                            continue 'rows;
                        }
                        if coeff == 1 {
                            let w = self.problem.weights[var.0].max(0);
                            min_free = Some(min_free.map_or(w, |m: i64| m.min(w)));
                        } else {
                            // Negative/other coefficients break the "must
                            // pay for one of these" reading; skip the row.
                            continue 'rows;
                        }
                    }
                }
            }
            if fixed_sum != 0 {
                continue;
            }
            if let Some(min_free) = min_free {
                bound += min_free;
                for &(var, _) in &constraint.terms {
                    if self.assignment[var.0].is_none() {
                        counted[var.0] = true;
                    }
                }
            }
        }
        bound
    }

    fn objective_of(&self, assignment: &[Option<bool>]) -> i64 {
        assignment
            .iter()
            .enumerate()
            .map(|(i, v)| if v == &Some(true) { self.problem.weights[i] } else { 0 })
            .sum()
    }

    /// Checks constraints under the current partial assignment and derives
    /// forced values (unit propagation). Returns the indices of variables it
    /// fixed so the caller can undo them.
    ///
    /// `seed` is the variable just branched on, if any: only the constraints
    /// containing it (transitively, through forced variables) can yield new
    /// information, so propagation walks a worklist instead of rescanning the
    /// whole constraint set to a fixpoint.
    fn propagate(&mut self, trail: &mut Vec<usize>, seed: Option<usize>) -> Propagation {
        let mut queue: Vec<usize> = match seed {
            Some(var) => {
                for &ci in &self.constraints_of[var] {
                    self.in_queue[ci] = true;
                }
                self.constraints_of[var].clone()
            }
            None => {
                for flag in self.in_queue.iter_mut() {
                    *flag = true;
                }
                (0..self.problem.constraints.len()).collect()
            }
        };
        let mut head = 0;
        while head < queue.len() {
            let ci = queue[head];
            head += 1;
            self.in_queue[ci] = false;
            let constraint = &self.problem.constraints[ci];
            let mut fixed_sum = 0i64;
            let mut free_pos = 0i64;
            let mut free_neg = 0i64;
            for &(var, coeff) in &constraint.terms {
                match self.assignment[var.0] {
                    Some(true) => fixed_sum += coeff,
                    Some(false) => {}
                    None => {
                        if coeff > 0 {
                            free_pos += coeff;
                        } else {
                            free_neg += coeff;
                        }
                    }
                }
            }
            let max = fixed_sum + free_pos;
            let min = fixed_sum + free_neg;
            let feasible = match constraint.cmp {
                Cmp::Eq => constraint.rhs >= min && constraint.rhs <= max,
                Cmp::Ge => max >= constraint.rhs,
            };
            if !feasible {
                for &ci in &queue[head..] {
                    self.in_queue[ci] = false;
                }
                return Propagation::Conflict;
            }
            // Forced assignments: a free variable whose two possible values
            // leave the constraint satisfiable in only one way.
            for term_index in 0..constraint.terms.len() {
                let constraint = &self.problem.constraints[ci];
                let (var, coeff) = constraint.terms[term_index];
                if self.assignment[var.0].is_some() {
                    continue;
                }
                let force = |value: bool| -> bool {
                    // Would fixing `var := value` make the constraint
                    // unsatisfiable regardless of the other free vars?
                    let delta = if value { coeff } else { 0 };
                    let rest_pos = free_pos - if coeff > 0 { coeff } else { 0 };
                    let rest_neg = free_neg - if coeff < 0 { coeff } else { 0 };
                    let new_max = fixed_sum + delta + rest_pos;
                    let new_min = fixed_sum + delta + rest_neg;
                    match constraint.cmp {
                        Cmp::Eq => !(constraint.rhs >= new_min && constraint.rhs <= new_max),
                        Cmp::Ge => new_max < constraint.rhs,
                    }
                };
                let true_bad = force(true);
                let false_bad = force(false);
                let forced = if true_bad && false_bad {
                    for &ci in &queue[head..] {
                        self.in_queue[ci] = false;
                    }
                    return Propagation::Conflict;
                } else if true_bad {
                    self.assignment[var.0] = Some(false);
                    false
                } else if false_bad {
                    self.assignment[var.0] = Some(true);
                    true
                } else {
                    continue;
                };
                trail.push(var.0);
                // The constraint's own free/fixed split changed.
                if forced {
                    fixed_sum += coeff;
                }
                if coeff > 0 {
                    free_pos -= coeff;
                } else {
                    free_neg -= coeff;
                }
                for &other in &self.constraints_of[var.0] {
                    if !self.in_queue[other] {
                        self.in_queue[other] = true;
                        queue.push(other);
                    }
                }
            }
        }
        Propagation::Ok
    }

    fn all_assigned(&self) -> bool {
        self.assignment.iter().all(Option::is_some)
    }

    fn pick_branch_var(&self) -> Option<usize> {
        // Prefer a free variable that occurs in a constraint (so propagation
        // has something to chew on), with the largest absolute weight to make
        // pruning effective; fall back to the first free variable.
        let mut best: Option<(usize, i64)> = None;
        for constraint in &self.problem.constraints {
            for &(var, _) in &constraint.terms {
                if self.assignment[var.0].is_none() {
                    let weight = self.problem.weights[var.0].abs();
                    if best.map(|(_, w)| weight > w).unwrap_or(true) {
                        best = Some((var.0, weight));
                    }
                }
            }
        }
        best.map(|(i, _)| i).or_else(|| self.assignment.iter().position(Option::is_none))
    }

    fn search(&mut self, branched: Option<usize>) -> Result<(), BudgetExhausted> {
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return Err(BudgetExhausted);
        }
        let mut trail = Vec::new();
        match self.propagate(&mut trail, branched) {
            Propagation::Conflict => {
                self.undo(&trail);
                return Ok(());
            }
            Propagation::Ok => {}
        }
        // Prune by bound.
        if let Some(best_objective) = self.best.as_ref().map(|b| b.objective) {
            let mut counted = vec![false; self.assignment.len()];
            if self.lower_bound(&mut counted) >= best_objective {
                self.undo(&trail);
                return Ok(());
            }
        }
        if self.all_assigned() {
            // Feasibility was maintained by propagation; double-check anyway.
            if self.is_feasible() {
                let objective = self.objective_of(&self.assignment);
                let better = self.best.as_ref().map(|b| objective < b.objective).unwrap_or(true);
                if better {
                    self.best = Some(Solution {
                        assignment: self.assignment.iter().map(|v| v.unwrap_or(false)).collect(),
                        objective,
                    });
                }
            }
            self.undo(&trail);
            return Ok(());
        }
        let var = self.pick_branch_var().expect("some variable is unassigned");
        // Try the cheaper value first.
        let order = if self.problem.weights[var] >= 0 { [false, true] } else { [true, false] };
        for value in order {
            self.assignment[var] = Some(value);
            self.search(Some(var))?;
            self.assignment[var] = None;
        }
        self.undo(&trail);
        Ok(())
    }

    fn undo(&mut self, trail: &[usize]) {
        for &index in trail {
            self.assignment[index] = None;
        }
    }

    fn is_feasible(&self) -> bool {
        self.problem.constraints.iter().all(|constraint| {
            let sum: i64 = constraint
                .terms
                .iter()
                .map(|&(var, coeff)| if self.assignment[var.0] == Some(true) { coeff } else { 0 })
                .sum();
            match constraint.cmp {
                Cmp::Eq => sum == constraint.rhs,
                Cmp::Ge => sum >= constraint.rhs,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_cheaper_of_two() {
        let mut ilp = IlpBuilder::new();
        let a = ilp.add_var("a", 3);
        let b = ilp.add_var("b", 1);
        ilp.add_exactly_one(&[a, b]);
        let sol = ilp.solve().unwrap();
        assert!(sol.value(b));
        assert!(!sol.value(a));
        assert_eq!(sol.objective, 1);
    }

    #[test]
    fn infeasible_problem_returns_none() {
        let mut ilp = IlpBuilder::new();
        let a = ilp.add_var("a", 1);
        ilp.add_constraint(vec![(a, 1)], Cmp::Eq, 2);
        assert!(ilp.solve().is_none());
    }

    #[test]
    fn implication_forces_consequent() {
        let mut ilp = IlpBuilder::new();
        let r = ilp.add_var("r", 0);
        let p = ilp.add_var("p", 5);
        let q = ilp.add_var("q", 1);
        ilp.add_exactly_one(&[r]);
        ilp.add_implication(r, p);
        // q is free; minimisation should leave it 0, but p is forced by r.
        let _ = q;
        let sol = ilp.solve().unwrap();
        assert!(sol.value(r));
        assert!(sol.value(p));
        assert!(!sol.value(q));
        assert_eq!(sol.objective, 5);
    }

    #[test]
    fn assignment_problem_finds_minimal_matching() {
        // 3x3 assignment problem encoded Clara-style: row and column
        // exactly-one constraints over pair variables.
        let costs = [[4, 1, 3], [2, 0, 5], [3, 2, 2]];
        let mut ilp = IlpBuilder::new();
        let mut vars = [[VarId(0); 3]; 3];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                vars[i][j] = ilp.add_var(format!("x{i}{j}"), c);
            }
        }
        for (i, row) in vars.iter().enumerate() {
            ilp.add_exactly_one(row);
            let column: Vec<VarId> = (0..3).map(|r| vars[r][i]).collect();
            ilp.add_exactly_one(&column);
        }
        let sol = ilp.solve().unwrap();
        // Optimal assignment: (0,1)+(1,0)+(2,2) = 1 + 2 + 2 = 5.
        assert_eq!(sol.objective, 5);
        assert!(sol.value(vars[0][1]));
        assert!(sol.value(vars[1][0]));
        assert!(sol.value(vars[2][2]));
    }

    #[test]
    fn ge_constraints_force_coverage() {
        // Minimal set cover: elements {1,2,3}, sets A={1,2} cost 3, B={2,3}
        // cost 3, C={1,2,3} cost 5.
        let mut ilp = IlpBuilder::new();
        let a = ilp.add_var("A", 3);
        let b = ilp.add_var("B", 3);
        let c = ilp.add_var("C", 5);
        ilp.add_constraint(vec![(a, 1), (c, 1)], Cmp::Ge, 1); // element 1
        ilp.add_constraint(vec![(a, 1), (b, 1), (c, 1)], Cmp::Ge, 1); // element 2
        ilp.add_constraint(vec![(b, 1), (c, 1)], Cmp::Ge, 1); // element 3
        let sol = ilp.solve().unwrap();
        assert_eq!(sol.objective, 5);
        assert!(sol.value(c) || (sol.value(a) && sol.value(b)));
    }

    #[test]
    fn negative_weights_are_taken() {
        let mut ilp = IlpBuilder::new();
        let a = ilp.add_var("a", -2);
        let b = ilp.add_var("b", 4);
        let sol = ilp.solve().unwrap();
        assert!(sol.value(a));
        assert!(!sol.value(b));
        assert_eq!(sol.objective, -2);
    }

    #[test]
    fn empty_problem_has_empty_solution() {
        let ilp = IlpBuilder::new();
        let sol = ilp.solve().unwrap();
        assert_eq!(sol.objective, 0);
        assert!(sol.assignment.is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut ilp = IlpBuilder::new();
        let vars: Vec<VarId> = (0..30).map(|i| ilp.add_var(format!("x{i}"), 1)).collect();
        for chunk in vars.chunks(3) {
            ilp.add_exactly_one(chunk);
        }
        let result = ilp.solve_with_limits(SolveLimits { max_nodes: 1 });
        assert_eq!(result, Err(BudgetExhausted));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force reference solver.
        fn brute_force(ilp: &IlpBuilder) -> Option<i64> {
            let n = ilp.var_count();
            let mut best: Option<i64> = None;
            for mask in 0u32..(1 << n) {
                let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                let feasible = ilp_constraints_hold(ilp, &assignment);
                if feasible {
                    let obj: i64 =
                        assignment.iter().enumerate().map(|(i, &v)| if v { ilp.weights[i] } else { 0 }).sum();
                    best = Some(best.map_or(obj, |b: i64| b.min(obj)));
                }
            }
            best
        }

        fn ilp_constraints_hold(ilp: &IlpBuilder, assignment: &[bool]) -> bool {
            ilp.constraints.iter().all(|constraint| {
                let sum: i64 = constraint
                    .terms
                    .iter()
                    .map(|&(var, coeff)| if assignment[var.0] { coeff } else { 0 })
                    .sum();
                match constraint.cmp {
                    Cmp::Eq => sum == constraint.rhs,
                    Cmp::Ge => sum >= constraint.rhs,
                }
            })
        }

        fn arb_ilp() -> impl Strategy<Value = IlpBuilder> {
            (2usize..8, 0usize..6).prop_flat_map(|(num_vars, num_constraints)| {
                let weights = prop::collection::vec(-5i64..10, num_vars);
                let constraints = prop::collection::vec(
                    (
                        prop::collection::vec(
                            (0..num_vars, prop_oneof![Just(1i64), Just(-1i64)]),
                            1..=num_vars.min(4),
                        ),
                        prop_oneof![Just(Cmp::Eq), Just(Cmp::Ge)],
                        -1i64..3,
                    ),
                    num_constraints,
                );
                (weights, constraints).prop_map(|(weights, constraints)| {
                    let mut ilp = IlpBuilder::new();
                    for (i, w) in weights.iter().enumerate() {
                        ilp.add_var(format!("x{i}"), *w);
                    }
                    for (terms, cmp, rhs) in constraints {
                        let terms: Vec<(VarId, i64)> =
                            terms.into_iter().map(|(v, c)| (VarId(v), c)).collect();
                        ilp.add_constraint(terms, cmp, rhs);
                    }
                    ilp
                })
            })
        }

        proptest! {
            #[test]
            fn matches_brute_force(ilp in arb_ilp()) {
                let expected = brute_force(&ilp);
                let actual = ilp.solve().map(|s| s.objective);
                prop_assert_eq!(actual, expected);
            }

            #[test]
            fn returned_solutions_are_feasible(ilp in arb_ilp()) {
                if let Some(sol) = ilp.solve() {
                    prop_assert!(ilp_constraints_hold(&ilp, &sol.assignment));
                }
            }
        }
    }
}
