//! `clara-cli` — command-line front end for the Clara pipeline.
//!
//! ```text
//! clara-cli problems                      # list the built-in assignments
//! clara-cli grade  <problem> <file>       # run the grading test suite on an attempt
//! clara-cli repair <problem> <file>       # grade and, if incorrect, print repair feedback
//! clara-cli clusters <problem> [n]        # cluster a synthetic pool of n correct solutions
//! ```
//!
//! The `<problem>` argument is one of the nine assignment names from the
//! paper's Appendix A (see `clara-cli problems`). Attempts are MiniPy files.

use std::process::ExitCode;

use clara::prelude::*;

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  clara-cli problems");
    eprintln!("  clara-cli grade  <problem> <attempt.py>");
    eprintln!("  clara-cli repair <problem> <attempt.py>");
    eprintln!("  clara-cli clusters <problem> [pool-size]");
    ExitCode::from(2)
}

fn find_problem(name: &str) -> Option<Problem> {
    clara::corpus::all_problems().into_iter().find(|p| p.name == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("problems") => {
            for problem in clara::corpus::all_problems() {
                println!(
                    "{:<20} entry `{}`, {} tests — {}",
                    problem.name,
                    problem.entry,
                    problem.spec.tests.len(),
                    problem.statement
                );
            }
            ExitCode::SUCCESS
        }
        Some("grade") if args.len() == 3 => grade(&args[1], &args[2]),
        Some("repair") if args.len() == 3 => repair(&args[1], &args[2]),
        Some("clusters") if args.len() >= 2 => {
            let pool = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);
            clusters(&args[1], pool)
        }
        _ => usage(),
    }
}

fn load(path: &str) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(err) => {
            eprintln!("cannot read `{path}`: {err}");
            None
        }
    }
}

fn grade(problem_name: &str, path: &str) -> ExitCode {
    let Some(problem) = find_problem(problem_name) else {
        eprintln!("unknown problem `{problem_name}` (see `clara-cli problems`)");
        return ExitCode::from(2);
    };
    let Some(source) = load(path) else { return ExitCode::from(2) };
    match parse_program(&source) {
        Err(err) => {
            println!("syntax error: {err}");
            ExitCode::FAILURE
        }
        Ok(parsed) => {
            let report = problem.spec.grade(&parsed);
            println!("{} / {} tests passed", report.passed_count(), problem.spec.tests.len());
            if report.all_passed() {
                println!("the attempt is correct");
                ExitCode::SUCCESS
            } else {
                if let Some(index) = report.first_failure() {
                    let test = &problem.spec.tests[index];
                    println!(
                        "first failing test: arguments {:?}",
                        test.args.iter().map(ToString::to_string).collect::<Vec<_>>()
                    );
                }
                ExitCode::FAILURE
            }
        }
    }
}

fn repair(problem_name: &str, path: &str) -> ExitCode {
    let Some(problem) = find_problem(problem_name) else {
        eprintln!("unknown problem `{problem_name}` (see `clara-cli problems`)");
        return ExitCode::from(2);
    };
    let Some(source) = load(path) else { return ExitCode::from(2) };
    if problem.grade_source(&source) == Some(true) {
        println!("the attempt already passes all tests — nothing to repair");
        return ExitCode::SUCCESS;
    }

    // Build the correct-solution pool from the problem's seeds plus a
    // synthetic expansion, mirroring how a course would use its archive.
    let dataset = generate_dataset(
        &problem,
        DatasetConfig { correct_count: 60, incorrect_count: 0, seed: 4242, ..DatasetConfig::default() },
    );
    let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
    for attempt in &dataset.correct {
        let _ = engine.add_correct_solution(&attempt.source);
    }
    eprintln!(
        "(cluster pool: {} correct solutions in {} clusters)",
        engine.correct_count(),
        engine.clusters().len()
    );

    match engine.repair_source(&source) {
        Err(err) => {
            println!("the attempt cannot be analysed: {err}");
            ExitCode::FAILURE
        }
        Ok(outcome) => {
            match &outcome.result.best {
                Some(found) => {
                    println!(
                        "repair found (cost {}, {} modified expressions, {:.2?}):",
                        found.total_cost,
                        found.modified_expression_count(),
                        outcome.result.elapsed
                    );
                }
                None => println!("no repair found: {:?}", outcome.result.failure),
            }
            for line in outcome.feedback.lines() {
                println!("  * {line}");
            }
            ExitCode::SUCCESS
        }
    }
}

fn clusters(problem_name: &str, pool: usize) -> ExitCode {
    let Some(problem) = find_problem(problem_name) else {
        eprintln!("unknown problem `{problem_name}` (see `clara-cli problems`)");
        return ExitCode::from(2);
    };
    let dataset = generate_dataset(
        &problem,
        DatasetConfig { correct_count: pool, incorrect_count: 0, seed: 4242, ..DatasetConfig::default() },
    );
    let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
    for attempt in &dataset.correct {
        let _ = engine.add_correct_solution(&attempt.source);
    }
    let stats = engine.clustering_stats();
    println!(
        "{}: {} correct solutions -> {} clusters (largest {}, {} mined expressions)",
        problem.name, stats.program_count, stats.cluster_count, stats.largest_cluster, stats.expression_count
    );
    for (index, cluster) in engine.clusters().iter().enumerate() {
        println!(
            "  cluster {index:>2}: {:>3} member(s), control flow {}",
            cluster.size(),
            clara_model::StructSig::sequence_key(&cluster.representative.program.signature)
        );
    }
    ExitCode::SUCCESS
}
