//! `clara-cli` — command-line front end for the Clara pipeline.
//!
//! ```text
//! clara-cli problems [--lang L]           # list the built-in assignments
//! clara-cli grade  <problem> <file>       # run the grading test suite on an attempt
//! clara-cli repair [--lang L] <problem> <file>   # grade and, if incorrect, print repair feedback
//! clara-cli clusters <problem> [n]        # cluster a synthetic pool of n correct solutions
//! clara-cli serve [options] [problem...]  # run the feedback service (NDJSON on stdio)
//! clara-cli batch [--lang L] <problem> <file...> # repair many attempts through one shared index
//! ```
//!
//! The `<problem>` argument is one of the assignment names listed by
//! `clara-cli problems`: the nine MiniPy assignments from the paper's
//! Appendix A plus the MiniC translations (`fibonacci_c`, ...). Each problem
//! has exactly one submission language; `--lang minipy|minic` (aliases
//! `python`, `c`) filters the listing / the served problem set and, on
//! `repair`/`batch`, asserts the problem's language — a mismatch is a usage
//! error rather than a confusing syntax error.
//!
//! Exit codes (asserted by the integration smoke test): `0` — the attempt is
//! correct or a repair was found (for `batch`: all attempts), `1` — no
//! repair was found / the attempt is incorrect or unsupported, `2` — usage,
//! unknown problem, unreadable file or syntax error.
//!
//! ## `serve`
//!
//! `serve` builds (or warm-loads, with `--index-dir`) the per-problem
//! cluster indexes, then answers newline-delimited JSON requests on
//! stdin/stdout — see `clara_server::protocol` — until EOF. Options:
//!
//! * `--index-dir DIR` — persist/load cluster indexes under `DIR` (warm
//!   start: only cluster representatives are re-analysed);
//! * `--listen ADDR` — serve the NDJSON protocol over TCP on `ADDR`
//!   through the nonblocking poll(2) event loop (the fleet protocol);
//! * `--http ADDR` — serve `POST /repair` / `GET /health` / `GET /stats`
//!   on `ADDR` (e.g. `127.0.0.1:8077`);
//! * `--shard i/N` — fleet position: load only the problems this shard
//!   holds on the consistent-hash ring (as owner or as the ring-successor
//!   replica) and reject the rest with a routing error;
//! * `--router --shards a:p1,b:p2,…` — hold no indexes; forward each
//!   request to the shard owning its problem×language key (the addresses
//!   are the shards' `--listen` endpoints, in shard-index order);
//! * `--pool-size N` — correct-solution pool built per problem when no
//!   stored index exists (default 60);
//! * `--workers N` / `--queue N` — worker pool sizing;
//! * `--no-learn` — reject online insertion of correct submissions;
//! * `--slow-ms N` — dump a structured-log line with the per-stage span
//!   breakdown for every request slower than `N` ms (and every failed
//!   request); `--slow-ms 0` traces everything;
//! * `--faults SPEC` (or `CLARA_FAULTS`) — deterministic fault injection
//!   at the net layer for chaos testing, e.g.
//!   `seed=7,drop=0.02,close=0.01,garble=0.02,delay=0.1,delay_ms=5`.
//!
//! Without `--listen`/`--http` the NDJSON protocol runs on stdin/stdout
//! exactly as before. With either listener the process serves over TCP
//! instead, prints each bound address to stderr as `(… endpoint on ADDR)`
//! (bind to port 0 for an ephemeral port), and treats stdin EOF as the
//! shutdown signal.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use clara::prelude::*;
use clara_server::{
    run_ndjson, Backend, ClusterStore, EventLoop, EventLoopConfig, FaultPlan, FeedbackService, Request,
    Router, RouterConfig, Server, ServerConfig, ServiceConfig, ShardSpec, Status, REPLICATION_FACTOR,
};

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  clara-cli problems [--lang minipy|minic]");
    eprintln!("  clara-cli grade  <problem> <attempt.py|attempt.c>");
    eprintln!("  clara-cli repair [--lang L] <problem> <attempt.py|attempt.c>");
    eprintln!("  clara-cli clusters <problem> [pool-size]");
    eprintln!("  clara-cli serve [--index-dir DIR] [--listen ADDR] [--http ADDR] [--shard i/N]");
    eprintln!("                  [--router --shards ADDR,ADDR,...] [--pool-size N]");
    eprintln!("                  [--workers N] [--queue N] [--no-learn] [--lang L]");
    eprintln!("                  [--slow-ms N] [--faults SPEC] [problem...]");
    eprintln!("                  (SPEC e.g. seed=7,drop=0.02,close=0.01,garble=0.02,delay=0.1,delay_ms=5;");
    eprintln!("                   also read from CLARA_FAULTS)");
    eprintln!("  clara-cli batch [--lang L] <problem> <attempt.py|attempt.c>...");
    ExitCode::from(2)
}

fn find_problem(name: &str) -> Option<Problem> {
    clara::corpus::all_problems_all_langs().into_iter().find(|p| p.name == name)
}

/// Extracts a leading/interspersed `--lang VALUE` pair from `args`.
/// `Ok(None)` when absent; `Err(())` when the value is missing or unknown.
fn extract_lang(args: &mut Vec<String>) -> Result<Option<Lang>, ()> {
    let Some(index) = args.iter().position(|a| a == "--lang") else { return Ok(None) };
    if index + 1 >= args.len() {
        eprintln!("--lang needs a value (minipy|minic)");
        return Err(());
    }
    let value = args.remove(index + 1);
    args.remove(index);
    match Lang::from_tag(&value) {
        Some(lang) => Ok(Some(lang)),
        None => {
            eprintln!("unknown language `{value}` (use minipy|minic)");
            Err(())
        }
    }
}

/// Checks a `--lang` assertion against the resolved problem.
fn lang_matches(problem: &Problem, lang: Option<Lang>) -> bool {
    match lang {
        Some(lang) if lang != problem.lang => {
            eprintln!("problem `{}` is a {} assignment, not {}", problem.name, problem.lang, lang);
            false
        }
        _ => true,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().cloned();
    let lang = match command.as_deref() {
        // `serve` parses its own options (including --lang).
        Some("serve") => None,
        _ => match extract_lang(&mut args) {
            Ok(lang) => lang,
            Err(()) => return usage(),
        },
    };
    match command.as_deref() {
        Some("problems") => {
            for problem in clara::corpus::all_problems_all_langs() {
                if lang.is_some_and(|l| l != problem.lang) {
                    continue;
                }
                println!(
                    "{:<22} [{}] entry `{}`, {} tests — {}",
                    problem.name,
                    problem.lang,
                    problem.entry,
                    problem.spec.tests.len(),
                    problem.statement
                );
            }
            ExitCode::SUCCESS
        }
        Some("grade") if args.len() == 3 => grade(&args[1], &args[2], lang),
        Some("repair") if args.len() == 3 => repair(&args[1], &args[2], lang),
        Some("clusters") if args.len() >= 2 => {
            let pool = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(60);
            clusters(&args[1], pool, lang)
        }
        Some("serve") => serve(&args[1..]),
        Some("batch") if args.len() >= 3 => batch(&args[1], &args[2..], lang),
        _ => usage(),
    }
}

fn load(path: &str) -> Option<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(err) => {
            eprintln!("cannot read `{path}`: {err}");
            None
        }
    }
}

fn grade(problem_name: &str, path: &str, lang: Option<Lang>) -> ExitCode {
    let Some(problem) = find_problem(problem_name) else {
        eprintln!("unknown problem `{problem_name}` (see `clara-cli problems`)");
        return ExitCode::from(2);
    };
    if !lang_matches(&problem, lang) {
        return ExitCode::from(2);
    }
    let Some(source) = load(path) else { return ExitCode::from(2) };
    let Some(report) = problem.grade_report(&source) else {
        // Re-parse only on the error path, to name the syntax error.
        let err = clara::core::frontend(problem.lang)
            .parse(&source)
            .err()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "unparseable submission".to_owned());
        println!("syntax error: {err}");
        return ExitCode::from(2);
    };
    println!("{} / {} tests passed", report.passed_count(), problem.spec.tests.len());
    if report.all_passed() {
        println!("the attempt is correct");
        ExitCode::SUCCESS
    } else {
        if let Some(index) = report.first_failure() {
            let test = &problem.spec.tests[index];
            println!(
                "first failing test: arguments {:?}",
                test.args.iter().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
        ExitCode::FAILURE
    }
}

/// Builds the correct-solution pool for a problem the way a course would use
/// its archive: the problem's seeds plus a synthetic expansion (MiniPy) or
/// the seed-cycling MiniC pool.
fn build_store(problem: &Problem, pool: usize) -> ClusterStore {
    let dataset = generate_dataset_for(
        problem,
        DatasetConfig { correct_count: pool, incorrect_count: 0, seed: 4242, ..DatasetConfig::default() },
    );
    let (store, _) = ClusterStore::build(
        problem,
        dataset.correct.iter().map(|a| a.source.as_str()),
        ClaraConfig::default(),
    );
    store
}

fn repair(problem_name: &str, path: &str, lang: Option<Lang>) -> ExitCode {
    let Some(problem) = find_problem(problem_name) else {
        eprintln!("unknown problem `{problem_name}` (see `clara-cli problems`)");
        return ExitCode::from(2);
    };
    if !lang_matches(&problem, lang) {
        return ExitCode::from(2);
    }
    let Some(source) = load(path) else { return ExitCode::from(2) };
    if let Err(err) = clara::core::frontend(problem.lang).parse(&source) {
        println!("syntax error: {err}");
        return ExitCode::from(2);
    }
    if problem.grade_source(&source) == Some(true) {
        println!("the attempt already passes all tests — nothing to repair");
        return ExitCode::SUCCESS;
    }

    let store = build_store(&problem, 60);
    let engine = store.engine();
    eprintln!(
        "(cluster pool: {} correct solutions in {} clusters)",
        engine.correct_count(),
        engine.clusters().len()
    );

    match engine.repair_source(&source) {
        Err(err) => {
            println!("the attempt cannot be analysed: {err}");
            ExitCode::FAILURE
        }
        Ok(outcome) => {
            let exit = match &outcome.result.best {
                Some(found) => {
                    println!(
                        "repair found (cost {}, {} modified expressions, {:.2?}):",
                        found.total_cost,
                        found.modified_expression_count(),
                        outcome.result.elapsed
                    );
                    ExitCode::SUCCESS
                }
                None => {
                    println!("no repair found: {:?}", outcome.result.failure);
                    ExitCode::FAILURE
                }
            };
            for line in outcome.feedback.lines() {
                println!("  * {line}");
            }
            exit
        }
    }
}

fn clusters(problem_name: &str, pool: usize, lang: Option<Lang>) -> ExitCode {
    let Some(problem) = find_problem(problem_name) else {
        eprintln!("unknown problem `{problem_name}` (see `clara-cli problems`)");
        return ExitCode::from(2);
    };
    if !lang_matches(&problem, lang) {
        return ExitCode::from(2);
    }
    let store = build_store(&problem, pool);
    let stats = store.stats();
    println!(
        "{}: {} correct solutions -> {} clusters (largest {}, {} mined expressions)",
        problem.name, stats.program_count, stats.cluster_count, stats.largest_cluster, stats.expression_count
    );
    for (index, cluster) in store.engine().clusters().iter().enumerate() {
        println!(
            "  cluster {index:>2}: {:>3} member(s), control flow {}",
            cluster.size(),
            clara_model::StructSig::sequence_key(&cluster.representative.program.signature)
        );
    }
    ExitCode::SUCCESS
}

struct ServeOptions {
    problems: Vec<String>,
    index_dir: Option<std::path::PathBuf>,
    listen: Option<String>,
    http: Option<String>,
    shard: ShardSpec,
    router: bool,
    shards: Vec<String>,
    pool_size: usize,
    workers: Option<usize>,
    queue: Option<usize>,
    learn: bool,
    lang: Option<Lang>,
    slow_ms: Option<u64>,
    faults: Option<FaultPlan>,
}

fn parse_serve_options(args: &[String]) -> Option<ServeOptions> {
    let mut options = ServeOptions {
        problems: Vec::new(),
        index_dir: None,
        listen: None,
        http: None,
        shard: ShardSpec::solo(),
        router: false,
        shards: Vec::new(),
        pool_size: 60,
        workers: None,
        queue: None,
        learn: true,
        lang: None,
        slow_ms: None,
        faults: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--index-dir" => options.index_dir = Some(iter.next()?.into()),
            "--listen" => options.listen = Some(iter.next()?.clone()),
            "--http" => options.http = Some(iter.next()?.clone()),
            "--shard" => options.shard = iter.next()?.parse().ok()?,
            "--router" => options.router = true,
            "--shards" => {
                options.shards = iter
                    .next()?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--pool-size" => options.pool_size = iter.next()?.parse().ok()?,
            "--workers" => options.workers = Some(iter.next()?.parse().ok()?),
            "--queue" => options.queue = Some(iter.next()?.parse().ok()?),
            "--no-learn" => options.learn = false,
            "--slow-ms" => options.slow_ms = Some(iter.next()?.parse().ok()?),
            "--lang" => options.lang = Some(Lang::from_tag(iter.next()?)?),
            "--faults" => match iter.next()?.parse() {
                Ok(plan) => options.faults = Some(plan),
                Err(err) => {
                    eprintln!("bad --faults spec: {err}");
                    return None;
                }
            },
            flag if flag.starts_with("--") => return None,
            name => options.problems.push(name.to_owned()),
        }
    }
    if options.faults.is_none() {
        if let Ok(spec) = std::env::var("CLARA_FAULTS") {
            if !spec.is_empty() {
                match spec.parse() {
                    Ok(plan) => options.faults = Some(plan),
                    Err(err) => {
                        eprintln!("bad CLARA_FAULTS spec: {err}");
                        return None;
                    }
                }
            }
        }
    }
    Some(options)
}

/// Binds a listener and reports the actual bound address (so `:0` requests
/// an ephemeral port and the caller learns which one).
fn bind_reported(kind: &str, addr: &str) -> Result<std::net::TcpListener, ExitCode> {
    match std::net::TcpListener::bind(addr) {
        Ok(listener) => {
            let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| addr.to_owned());
            eprintln!("({kind} endpoint on {bound})");
            Ok(listener)
        }
        Err(err) => {
            eprintln!("cannot bind `{addr}`: {err}");
            Err(ExitCode::from(2))
        }
    }
}

/// Runs an event loop over `backend` with the requested listeners; stdin
/// EOF (watched from a helper thread) requests shutdown.
fn run_event_loop(
    backend: Backend,
    listen: Option<&str>,
    http: Option<&str>,
    faults: Option<FaultPlan>,
) -> Result<(), ExitCode> {
    if let Some(plan) = &faults {
        eprintln!("(fault injection armed: {plan:?})");
    }
    let config = EventLoopConfig { faults, ..EventLoopConfig::default() };
    let mut event_loop = match EventLoop::new(backend, config) {
        Ok(event_loop) => event_loop,
        Err(err) => {
            eprintln!("cannot start the event loop: {err}");
            return Err(ExitCode::FAILURE);
        }
    };
    let attach = |result: std::io::Result<EventLoop>| {
        result.map_err(|err| {
            eprintln!("cannot attach listener: {err}");
            ExitCode::FAILURE
        })
    };
    if let Some(addr) = listen {
        let listener = bind_reported("ndjson", addr)?;
        event_loop = attach(event_loop.with_ndjson_listener(listener))?;
    }
    if let Some(addr) = http {
        let listener = bind_reported("http", addr)?;
        event_loop = attach(event_loop.with_http_listener(listener))?;
    }
    let handle = event_loop.handle();
    std::thread::Builder::new()
        .name("clara-stdin-anchor".to_owned())
        .spawn(move || {
            // stdin is the process lifetime anchor: consume it to EOF, then
            // ask the loop to drain and exit.
            let mut sink = String::new();
            let stdin = std::io::stdin();
            loop {
                sink.clear();
                match stdin.read_line(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            handle.request_shutdown();
        })
        .expect("spawning the stdin anchor");
    eprintln!("(serving on the event loop; stdin EOF shuts down)");
    if let Err(err) = event_loop.run() {
        eprintln!("serve error: {err}");
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

/// `serve --router`: a thin forwarding process holding no indexes.
fn serve_router(options: &ServeOptions) -> ExitCode {
    if options.shards.is_empty() {
        eprintln!(
            "--router needs --shards ADDR,ADDR,... (one NDJSON address per shard, in shard-index order)"
        );
        return ExitCode::from(2);
    }
    if options.listen.is_none() && options.http.is_none() {
        eprintln!("--router needs --listen and/or --http to accept clients");
        return ExitCode::from(2);
    }
    let catalog = clara::corpus::all_problems_all_langs()
        .into_iter()
        .map(|p| (p.name.to_owned(), p.lang.as_str().to_owned()));
    let router = Arc::new(Router::new(
        options.shards.clone(),
        catalog,
        RouterConfig {
            workers: options.workers.unwrap_or(4),
            queue_capacity: options.queue.unwrap_or(64),
            ..RouterConfig::default()
        },
    ));
    eprintln!("(router over {} shard(s): {})", options.shards.len(), options.shards.join(", "));
    let outcome = run_event_loop(
        Backend::router(Arc::clone(&router)),
        options.listen.as_deref(),
        options.http.as_deref(),
        options.faults,
    );
    let report = router.report(0);
    eprintln!(
        "(forwarded {} request(s), {} upstream error(s), {} retr(ies), {} failover(s))",
        report.forwarded, report.upstream_errors, report.retries, report.failovers
    );
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

fn serve(args: &[String]) -> ExitCode {
    let Some(options) = parse_serve_options(args) else { return usage() };
    if options.router {
        return serve_router(&options);
    }
    let all = clara::corpus::all_problems_all_langs();
    let selected: Vec<Problem> = if options.problems.is_empty() {
        all.into_iter().filter(|p| options.lang.is_none_or(|l| l == p.lang)).collect()
    } else {
        let mut selected = Vec::new();
        for name in &options.problems {
            match all.iter().find(|p| p.name == *name) {
                Some(problem) => {
                    // An explicit name contradicting --lang is a usage
                    // error, not a silent override.
                    if !lang_matches(problem, options.lang) {
                        return ExitCode::from(2);
                    }
                    selected.push(problem.clone());
                }
                None => {
                    eprintln!("unknown problem `{name}` (see `clara-cli problems`)");
                    return ExitCode::from(2);
                }
            }
        }
        selected
    };

    // A fleet shard loads the problems it *holds* on the consistent-hash
    // ring — those it owns plus those it carries as the ring successor
    // (replica), so reads and learns survive the owner's death. Everything
    // else is answered with a routing error pointing at the owning shard.
    let spec = options.shard;
    let selected: Vec<Problem> = if spec.is_solo() {
        selected
    } else {
        let total = selected.len();
        let held: Vec<Problem> = selected
            .into_iter()
            .filter(|p| spec.holds(p.name, p.lang.as_str(), REPLICATION_FACTOR))
            .collect();
        eprintln!(
            "(shard {spec}: holds {} of {total} problem indexes at replication factor {REPLICATION_FACTOR})",
            held.len()
        );
        held
    };

    // Bring every shard online: warm-load a stored index when possible,
    // otherwise build cold from the synthetic archive (and persist for the
    // next start when an index directory was given).
    let mut stores = Vec::with_capacity(selected.len());
    for problem in &selected {
        let loaded = options.index_dir.as_deref().and_then(|dir| {
            // Crash-safe load: a truncated or corrupt index file is
            // quarantined and rebuilt from seeds instead of refusing to
            // start (or silently re-tripping on it every launch).
            match ClusterStore::load_or_recover(dir, problem, ClaraConfig::default()) {
                Ok(store) => store,
                Err(err) => {
                    eprintln!("({}: ignoring stored index: {err})", problem.name);
                    None
                }
            }
        });
        let store = match loaded {
            Some(store) => {
                eprintln!("({}: warm-loaded {} clusters)", problem.name, store.stats().cluster_count);
                store
            }
            None => {
                let store = build_store(problem, options.pool_size);
                if let Some(dir) = options.index_dir.as_deref() {
                    match store.save(dir) {
                        Ok(path) => eprintln!("({}: index saved to {})", problem.name, path.display()),
                        Err(err) => eprintln!("({}: could not save index: {err})", problem.name),
                    }
                }
                eprintln!(
                    "({}: cold-built {} clusters from {} solutions)",
                    problem.name,
                    store.stats().cluster_count,
                    store.stats().program_count
                );
                store
            }
        };
        stores.push(store);
    }

    let service = Arc::new(FeedbackService::new(
        stores,
        ServiceConfig {
            learn: options.learn,
            shard: spec,
            slow_ms: options.slow_ms,
            ..ServiceConfig::default()
        },
    ));
    let mut server_config = ServerConfig::default();
    if let Some(workers) = options.workers {
        server_config.workers = workers;
    }
    if let Some(queue) = options.queue {
        server_config.queue_capacity = queue;
    }
    let mut server = Server::new(Arc::clone(&service), server_config);

    if options.listen.is_some() || options.http.is_some() {
        // Fleet mode: all traffic over TCP through the poll(2) event loop;
        // stdin only anchors the process lifetime.
        let server = Arc::new(server);
        let outcome = run_event_loop(
            Backend::local(Arc::clone(&server)),
            options.listen.as_deref(),
            options.http.as_deref(),
            options.faults,
        );
        // The loop has exited and dropped its backend; joining the workers
        // (pool drop) guarantees in-flight learns reach the index before we
        // persist it below.
        drop(server);
        if let Err(code) = outcome {
            return code;
        }
    } else {
        eprintln!("(serving NDJSON on stdin/stdout; EOF shuts down)");
        let stdin = std::io::stdin();
        if let Err(err) = run_ndjson(&mut server, stdin.lock(), std::io::stdout()) {
            eprintln!("serve error: {err}");
            return ExitCode::FAILURE;
        }
    }
    let stats = service.stats();
    // Persist what was learned online, so the next warm start sees it.
    if let Some(dir) = options.index_dir.as_deref() {
        if stats.learned > 0 {
            match service.save_indexes(dir) {
                Ok(()) => eprintln!("(re-saved indexes with {} learned solution(s))", stats.learned),
                Err(err) => eprintln!("(could not re-save indexes: {err})"),
            }
        }
    }
    eprintln!(
        "(served {} requests: {} cache hits, {} repaired, {} correct, {} no-repair, {} errors, {} learned)",
        stats.requests,
        stats.cache_hits,
        stats.repaired,
        stats.correct,
        stats.no_repair,
        stats.errors,
        stats.learned
    );
    ExitCode::SUCCESS
}

fn batch(problem_name: &str, paths: &[String], lang: Option<Lang>) -> ExitCode {
    let Some(problem) = find_problem(problem_name) else {
        eprintln!("unknown problem `{problem_name}` (see `clara-cli problems`)");
        return ExitCode::from(2);
    };
    if !lang_matches(&problem, lang) {
        return ExitCode::from(2);
    }
    let store = build_store(&problem, 60);
    let service = FeedbackService::new(vec![store], ServiceConfig::default());

    // Exit-code contract (module docs): 2 — unreadable/unparseable attempts,
    // else 1 — attempts without a repair, else 0.
    let mut errored = 0usize;
    let mut unrepaired = 0usize;
    for (index, path) in paths.iter().enumerate() {
        let Some(source) = load(path) else {
            errored += 1;
            continue;
        };
        let response = service.handle(&Request {
            id: index as u64,
            problem: problem.name.to_owned(),
            lang: Some(problem.lang.as_str().to_owned()),
            source,
            learn: None,
            trace: None,
        });
        let summary = match response.status {
            Status::Correct => "correct".to_owned(),
            Status::Repaired => format!(
                "repaired (cost {}, {} suggestion(s)){}",
                response.cost.unwrap_or(0),
                response.feedback.len(),
                if response.cache_hit { ", cached" } else { "" }
            ),
            Status::NoRepair => {
                unrepaired += 1;
                "no repair found".to_owned()
            }
            Status::Error => {
                errored += 1;
                format!("error: {}", response.error.as_deref().unwrap_or("unknown"))
            }
        };
        println!("{path}: {summary}");
        let _ = std::io::stdout().flush();
    }
    if errored > 0 {
        ExitCode::from(2)
    } else if unrepaired > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
