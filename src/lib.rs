//! # clara — automated clustering and program repair for introductory programming assignments
//!
//! A from-scratch Rust reproduction of *"Automated Clustering and Program
//! Repair for Introductory Programming Assignments"* (Gulwani, Radiček,
//! Zuleger — PLDI 2018), the system known as **Clara**.
//!
//! The key idea is to use the *wisdom of the crowd*: the many correct student
//! solutions that already exist for an assignment are clustered by **dynamic
//! equivalence**, and an incorrect attempt is repaired by finding the minimal
//! set of expression modifications that makes it equivalent to some cluster,
//! mining replacement expressions from the cluster members and selecting a
//! consistent minimal-cost subset with a 0-1 ILP.
//!
//! This facade crate re-exports the individual components:
//!
//! | crate | contents |
//! |---|---|
//! | [`lang`] | MiniPy — the student-program language (lexer, parser, AST, values, interpreter, grading) |
//! | [`c`] | MiniC — the C90-ish second frontend, lowering into the same model |
//! | [`model`] | the Clara program model: locations, update expressions, traces (§3), the language-neutral surface IR and the `Frontend` abstraction |
//! | [`ted`] | Zhang–Shasha tree edit distance (the repair cost metric) |
//! | [`ilp`] | exact 0-1 ILP branch-and-bound solver (Definition 5.5) |
//! | [`core`] | matching, clustering, repair and feedback (§4–§5, the paper's contribution) |
//! | [`autograder`] | the AutoGrader-style rewrite-rule baseline (§6.2.1) |
//! | [`corpus`] | the synthetic student-submission corpus (assignments of Appendix A) and the serving traffic model |
//! | [`server`] | the serving layer: persistent cluster index, result cache, worker pool, NDJSON/HTTP front ends |
//!
//! ## Quick start
//!
//! ```rust
//! use clara::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Describe the assignment: entry function + grading inputs.
//! let problem = clara::corpus::mooc::derivatives();
//! let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
//!
//! // 2. Feed it the existing correct solutions (they are clustered on the fly).
//! for seed in &problem.seeds {
//!     engine.add_correct_solution(seed)?;
//! }
//!
//! // 3. Repair an incorrect attempt and show the generated feedback.
//! let attempt = "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n";
//! let outcome = engine.repair_source(attempt)?;
//! for line in outcome.feedback.lines() {
//!     println!("{line}");
//! }
//! assert!(outcome.result.best.is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use clara_autograder as autograder;
pub use clara_c as c;
pub use clara_core as core;
pub use clara_corpus as corpus;
pub use clara_ilp as ilp;
pub use clara_lang as lang;
pub use clara_model as model;
pub use clara_server as server;
pub use clara_ted as ted;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use clara_autograder::{AutoGrader, AutoGraderConfig, ErrorModel};
    pub use clara_core::{
        cluster_programs, find_matching, frontend, repair_attempt, AnalyzedProgram, Clara, ClaraConfig,
        Cluster, Feedback, FeedbackOptions, RepairAction, RepairConfig, RepairResult,
    };
    pub use clara_corpus::{generate_dataset, generate_dataset_for, Dataset, DatasetConfig, Problem};
    pub use clara_lang::{parse_program, ProblemSpec, SourceProgram, TestCase, Value};
    pub use clara_model::{execute, lower_entry, Fuel, Lang, Program, Trace};
    pub use clara_ted::expr_edit_distance;
}
