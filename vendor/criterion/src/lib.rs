//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/`bench_function`/`iter` surface used by the bench
//! targets, timing each benchmark with `std::time::Instant` and printing a
//! mean per-iteration figure. No statistics, plots or HTML reports.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (same implementation).
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Opens a named benchmark group; benchmarks in it are reported as
    /// `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), sample_size: None }
    }

    /// Runs one benchmark: `routine` receives a [`Bencher`] and is sampled
    /// `sample_size` times.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { iterations: 1, elapsed: Duration::ZERO };
        // Warm-up pass, also used to pick an iteration count aiming at
        // roughly 50ms per sample (clamped to keep total runtime sane).
        bencher.elapsed = Duration::ZERO;
        routine(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        bencher.iterations =
            (Duration::from_millis(50).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            routine(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{id:<40} time: {} ({} samples × {} iters)",
            format_time(mean),
            self.sample_size,
            bencher.iterations
        );
        self
    }
}

/// A named group of related benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = Some(samples);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        let mut criterion = self.criterion.clone();
        if let Some(samples) = self.sample_size {
            criterion = criterion.sample_size(samples);
        }
        criterion.bench_function(&full_id, routine);
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Passed to benchmark routines; times the closure given to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the driver-chosen number of iterations.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, with or without a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
