//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] runs a genuine 8-round ChaCha block function over a key
//! expanded from the `u64` seed with SplitMix64. The exact stream differs
//! from the upstream crate (which nobody here depends on — only determinism
//! matters for the corpus), but the generator is a real, well-distributed
//! stream cipher rather than a toy LCG.

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha (8 rounds) random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unserved word index in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Two rounds per iteration: one column round, one diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix64(&mut mix);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }
}

/// 20-round variant, same construction (provided for API parity).
#[derive(Debug, Clone)]
pub struct ChaCha20Rng(ChaCha8Rng);

impl SeedableRng for ChaCha20Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha20Rng(ChaCha8Rng::seed_from_u64(seed ^ 0x5ca1_ab1e_0020_0000))
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams for different seeds should diverge");
    }

    #[test]
    fn words_are_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..256 {
            ones += rng.next_u32().count_ones();
        }
        let total = 256 * 32;
        // Expect roughly half the bits set (loose 4-sigma style bound).
        assert!((ones as i64 - total / 2).abs() < total / 10, "bit bias: {ones}/{total}");
    }
}
