//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal API-compatible subset: a [`Serialize`] trait over a simple
//! self-describing [`Content`] tree, a matching [`Deserialize`] trait that
//! reads values back out of a [`Content`] tree (used by `serde_json::from_str`
//! for the persistent cluster index), and the derive macros for both.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value, the intermediate form produced by
/// [`Serialize`] and consumed by `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

/// A value that can be serialized into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_content(&self) -> Content;
}

impl Content {
    /// The entries of a JSON object, or `None` for any other shape.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The items of a JSON array, or `None` for any other shape.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None` for any other shape.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short shape name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds the standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Content) -> DeError {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can be reconstructed from a [`Content`] tree (the analogue of
/// serde's `Deserialize`, monomorphic in the data model).
pub trait Deserialize: Sized {
    /// Reads a value out of the serialization data model.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the content shape does not match `Self`.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field by name and deserializes it; missing fields see
/// [`Content::Null`] (so `Option` fields default to `None`).
///
/// # Errors
///
/// Propagates the field's own [`DeError`], prefixed with the field name.
pub fn field<T: Deserialize>(entries: &[(String, Content)], name: &str) -> Result<T, DeError> {
    let content =
        entries.iter().find(|(key, _)| key == name).map(|(_, value)| value).unwrap_or(&Content::Null);
    T::from_content(content).map_err(|e| DeError(format!("field `{name}`: {e}")))
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let value: i128 = match content {
                    Content::I64(n) => i128::from(*n),
                    Content::U64(n) => i128::from(*n),
                    // Integral floats round-trip as integers (JSON has one
                    // number type).
                    Content::F64(x) if *x == x.trunc() && x.abs() < 9.0e18 => *x as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(value)
                    .map_err(|_| DeError(format!("integer {value} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(x) => Ok(*x),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            // `serde_json` writes non-finite floats as `null`.
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 3 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?, C::from_content(&items[2])?))
            }
            other => Err(DeError::expected("3-element array", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
