//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal API-compatible subset: a [`Serialize`] trait over a simple
//! self-describing [`Content`] tree, the matching derive macros, and a marker
//! [`Deserialize`] trait (nothing in this workspace deserializes).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value, the intermediate form produced by
/// [`Serialize`] and consumed by `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

/// A value that can be serialized into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_content(&self) -> Content;
}

/// Marker trait matching serde's `Deserialize`; derived but never used in
/// this workspace (nothing deserializes).
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content(), self.2.to_content()])
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
