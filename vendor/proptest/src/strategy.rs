//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRunner;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Applies a function to every generated value.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }

    /// Generates a value, then generates from the strategy built from it.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, flat_map }
    }

    /// Builds recursive values: `self` generates leaves, `expand` wraps an
    /// inner strategy into the composite case. `depth` bounds recursion; the
    /// size hints of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive { base: self.boxed(), expand: Rc::new(move |inner| expand(inner).boxed()), depth }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.new_value(runner)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.map)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    flat_map: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, runner: &mut TestRunner) -> T::Value {
        (self.flat_map)(self.inner.new_value(runner)).new_value(runner)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    expand: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive { base: self.base.clone(), expand: Rc::clone(&self.expand), depth: self.depth }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        // Generate a leaf at depth zero, and otherwise with probability 1/4
        // so that shallow values still occur.
        if self.depth == 0 || runner.random_below(4) == 0 {
            return self.base.new_value(runner);
        }
        let inner =
            Recursive { base: self.base.clone(), expand: Rc::clone(&self.expand), depth: self.depth - 1 };
        (self.expand)(inner.boxed()).new_value(runner)
    }
}

/// Uniform choice between strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over a non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        let index = runner.random_below(self.options.len() as u64) as usize;
        self.options[index].new_value(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + runner.random_below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
