//! Deterministic case generation: a SplitMix64 stream seeded from the test
//! name, re-seeded per case so that case `n` is reproducible in isolation.

/// Deterministic random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRunner {
    base: u64,
    state: u64,
}

impl TestRunner {
    /// Creates a runner whose stream depends only on `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { base: hash, state: hash }
    }

    /// Re-seeds for the given case index (case streams are independent).
    pub fn start_case(&mut self, case: u32) {
        self.state = self.base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be positive).
    pub fn random_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "random_below(0)");
        self.next_u64() % n
    }
}
