//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings and an optional `#![proptest_config(..)]`,
//! `prop_assert*`, integer-range / `Just` / tuple strategies, `prop_map`,
//! `prop_flat_map`, `prop_recursive`, [`prop_oneof!`], `sample::select` and
//! `collection::vec`.
//!
//! Differences from the real crate: cases are generated from a *fixed* seed
//! derived from the test name (fully deterministic runs, no persistence
//! files) and failing cases are reported by ordinary `assert!` panics without
//! shrinking.

pub mod strategy;
pub mod test_runner;

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Strategies over element samples.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy returning one uniformly chosen element of a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Chooses uniformly from a non-empty list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.0[runner.random_below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds for generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { min: range.start, max: range.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange { min: *range.start(), max: *range.end() }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + runner.random_below(span) as usize;
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRunner;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-tree mirror (`prop::sample::select`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Runs each property as `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::deterministic(stringify!($name));
                for case in 0..config.cases {
                    runner.start_case(case);
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut runner);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Uniform choice between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
