//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the two
//! shapes this workspace actually uses — structs with named fields and enums
//! with unit variants — by walking the raw `proc_macro::TokenStream` (no
//! `syn`/`quote`: the build environment has no registry access). Generics,
//! tuple structs and data-carrying enum variants are rejected with a compile
//! error rather than silently miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Unit-variant enum: variant identifiers.
    Enum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` via the simplified `Content` data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(parsed) => render_serialize(&parsed).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}

/// Derives `serde::Deserialize` from the simplified `Content` data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(parsed) => render_deserialize(&parsed).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}

fn render_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    match &parsed.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{f}: ::serde::field(entries, {f:?})?")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let entries = content.as_map().ok_or_else(|| ::serde::DeError::expected(concat!(\"object for struct `\", stringify!({name}), \"`\"), content))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let text = content.as_str().ok_or_else(|| ::serde::DeError::expected(concat!(\"string for enum `\", stringify!({name}), \"`\"), content))?;\n\
                         match text {{\n\
                             {},\n\
                             other => ::std::result::Result::Err(::serde::DeError(format!(\n\
                                 \"unknown variant `{{other}}` of enum `{{}}`\", stringify!({name})))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n                             ")
            )
        }
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

fn render_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    match &parsed.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Content::Str(::std::string::String::from({v:?}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("serde_derive stub: expected `struct` or `enum`".to_owned()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        _ => return Err("serde_derive stub: expected type name".to_owned()),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!("serde_derive stub: generic type `{name}` is not supported"));
        }
        _ => {
            return Err(format!(
                "serde_derive stub: `{name}` must be a braced struct or enum (tuple/unit shapes unsupported)"
            ));
        }
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_fields(body)?),
        "enum" => Shape::Enum(parse_enum_variants(body)?),
        other => return Err(format!("serde_derive stub: unsupported item kind `{other}`")),
    };
    Ok(Parsed { name, shape })
}

/// Extracts field names from a named-field struct body. Commas inside angle
/// brackets (`HashMap<String, f64>`) are not field separators, so the scanner
/// tracks angle depth; function-pointer types (`fn(..) -> ..`) would confuse
/// it and are not used by any derived type in this workspace.
fn parse_struct_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(token) = tokens.get(i) else { break };
        let TokenTree::Ident(ident) = token else {
            return Err("serde_derive stub: expected field name (named fields only)".to_owned());
        };
        fields.push(ident.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde_derive stub: expected `:` after field name".to_owned()),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(i) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut expect_name = true;
    for token in body {
        match token {
            TokenTree::Punct(p) if p.as_char() == '#' => {}
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {}
            TokenTree::Ident(ident) if expect_name => {
                variants.push(ident.to_string());
                expect_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expect_name = true,
            other => {
                return Err(format!(
                    "serde_derive stub: only unit enum variants are supported (found `{other}`)"
                ));
            }
        }
    }
    Ok(variants)
}
