//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Provides exactly what this workspace uses: [`RngCore`], the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`, `gen_ratio`), [`SeedableRng`]
//! with `seed_from_u64`, and [`seq::SliceRandom`] (`choose`, `shuffle`).
//! Deliberately *no* entropy sources (`thread_rng`/`from_entropy`): every RNG
//! must be constructed from an explicit seed, which keeps the corpus
//! generator reproducible by construction.

use std::ops::Range;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (deterministic key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations over slices (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = RngCore::next_u64(rng) as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..10i64);
            assert!((-5..10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut values: Vec<usize> = (0..50).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Counter(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
