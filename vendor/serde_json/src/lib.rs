//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! data model ([`serde::Content`]) to JSON text and parses JSON text back
//! into it ([`from_str`], used by the persistent cluster index and the
//! feedback-service wire protocol).

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Serialization error (the vendored subset is infallible in practice, the
/// type exists for API compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent,
/// matching real serde_json's default pretty formatter).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Parses a JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or when the parsed value does not
/// match the shape of `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let content = parse_content(text)?;
    T::from_content(&content).map_err(|e| Error(e.to_string()))
}

/// Parses a JSON text into the raw [`Content`] data model.
///
/// # Errors
///
/// Returns an [`Error`] describing the first malformed construct.
pub fn parse_content(text: &str) -> Result<Content, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            // Surrogate pairs encode astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&first) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                            // parse_hex4 leaves pos on the byte after the
                            // escape; skip the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character (the input is a
                    // &str, so byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.error("invalid utf-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits =
            std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| self.error("invalid \\u escape"))?;
        let value = u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 { Content::U64(n as u64) } else { Content::I64(n) });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| self.error("invalid number"))
    }
}

fn write_content(out: &mut String, content: &Content, indent: Option<&str>, level: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => write_f64(out, *x),
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => write_compound(out, indent, level, '[', ']', items.len(), |out, i, level| {
            write_content(out, &items[i], indent, level);
        }),
        Content::Map(entries) => {
            write_compound(out, indent, level, '{', '}', entries.len(), |out, i, level| {
                write_json_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, &entries[i].1, indent, level);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<&str>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=level {
                out.push_str(pad);
            }
        }
        write_item(out, i, level + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
    out.push(close);
}

/// Real serde_json serializes non-finite floats as `null`; integral floats
/// keep a trailing `.0` so they round-trip as floating point.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string("a\"b\nc").unwrap(), "\"a\\\"b\\nc\"");
        assert_eq!(to_string(&Option::<usize>::None).unwrap(), "null");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse_content("null").unwrap(), Content::Null);
        assert_eq!(parse_content("true").unwrap(), Content::Bool(true));
        assert_eq!(parse_content(" 42 ").unwrap(), Content::U64(42));
        assert_eq!(parse_content("-7").unwrap(), Content::I64(-7));
        assert_eq!(parse_content("1.5").unwrap(), Content::F64(1.5));
        assert_eq!(parse_content("1.0").unwrap(), Content::F64(1.0));
        assert_eq!(parse_content("1e3").unwrap(), Content::F64(1000.0));
        assert_eq!(parse_content("\"a\\nb\"").unwrap(), Content::Str("a\nb".to_owned()));
        assert_eq!(parse_content("\"\\u00e9\\ud83d\\ude00\"").unwrap(), Content::Str("é😀".to_owned()));
    }

    #[test]
    fn parse_compounds() {
        assert_eq!(
            parse_content("[1, [2], {}]").unwrap(),
            Content::Seq(vec![Content::U64(1), Content::Seq(vec![Content::U64(2)]), Content::Map(vec![])])
        );
        assert_eq!(
            parse_content("{\"a\": [true], \"b\": null}").unwrap(),
            Content::Map(vec![
                ("a".to_owned(), Content::Seq(vec![Content::Bool(true)])),
                ("b".to_owned(), Content::Null),
            ])
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "{\"a\":}", "nul"] {
            assert!(parse_content(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn typed_roundtrip() {
        let values: Vec<(String, Vec<u64>)> = vec![("a\"b".to_owned(), vec![1, 2]), ("⋄".to_owned(), vec![])];
        let json = to_string(&values).unwrap();
        let back: Vec<(String, Vec<u64>)> = from_str(&json).unwrap();
        assert_eq!(values, back);
        let floats = vec![0.1, 1.0, -2.5e-3, f64::MAX];
        let back: Vec<f64> = from_str(&to_string(&floats).unwrap()).unwrap();
        assert_eq!(floats, back);
        let opt: Vec<Option<i64>> = vec![Some(-3), None];
        let back: Vec<Option<i64>> = from_str(&to_string(&opt).unwrap()).unwrap();
        assert_eq!(opt, back);
    }

    #[test]
    fn pretty_printing_matches_serde_json_shape() {
        let value = Content::Map(vec![
            ("name".to_owned(), Content::Str("clara".to_owned())),
            ("sizes".to_owned(), Content::Seq(vec![Content::U64(1), Content::U64(2)])),
            ("empty".to_owned(), Content::Seq(vec![])),
        ]);
        struct Raw(Content);
        impl Serialize for Raw {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let pretty = to_string_pretty(&Raw(value)).unwrap();
        let expected = "{\n  \"name\": \"clara\",\n  \"sizes\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}";
        assert_eq!(pretty, expected);
    }
}
