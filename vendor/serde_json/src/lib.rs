//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! data model ([`serde::Content`]) to JSON text. Only the serialization half
//! is provided; nothing in this workspace deserializes JSON.

use std::fmt;

use serde::{Content, Serialize};

/// Serialization error (the vendored subset is infallible in practice, the
/// type exists for API compatibility).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent,
/// matching real serde_json's default pretty formatter).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

fn write_content(out: &mut String, content: &Content, indent: Option<&str>, level: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => write_f64(out, *x),
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => write_compound(out, indent, level, '[', ']', items.len(), |out, i, level| {
            write_content(out, &items[i], indent, level);
        }),
        Content::Map(entries) => {
            write_compound(out, indent, level, '{', '}', entries.len(), |out, i, level| {
                write_json_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, &entries[i].1, indent, level);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<&str>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=level {
                out.push_str(pad);
            }
        }
        write_item(out, i, level + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
    out.push(close);
}

/// Real serde_json serializes non-finite floats as `null`; integral floats
/// keep a trailing `.0` so they round-trip as floating point.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string("a\"b\nc").unwrap(), "\"a\\\"b\\nc\"");
        assert_eq!(to_string(&Option::<usize>::None).unwrap(), "null");
    }

    #[test]
    fn pretty_printing_matches_serde_json_shape() {
        let value = Content::Map(vec![
            ("name".to_owned(), Content::Str("clara".to_owned())),
            ("sizes".to_owned(), Content::Seq(vec![Content::U64(1), Content::U64(2)])),
            ("empty".to_owned(), Content::Seq(vec![])),
        ]);
        struct Raw(Content);
        impl Serialize for Raw {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let pretty = to_string_pretty(&Raw(value)).unwrap();
        let expected = "{\n  \"name\": \"clara\",\n  \"sizes\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}";
        assert_eq!(pretty, expected);
    }
}
