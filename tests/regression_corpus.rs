//! CI replay of the committed multi-fault regression corpus.
//!
//! `corpus/regression/` holds minimized multi-fault mutants promoted by the
//! `mutation_quality` harness (regenerate with `CLARA_WRITE_REGRESSION=1
//! cargo run --release -p clara-bench --bin mutation_quality -- --smoke`).
//! Every entry is a previously observed wrong-answer mutant: this test
//! replays each fault chain from its recorded per-step seeds and demands
//!
//! 1. the chain still produces byte-identical source (the mutation engine
//!    stayed deterministic),
//! 2. the mutant still fails its assignment (the corpus has not gone stale),
//! 3. the full repair pipeline stays sound on it, and
//! 4. entries that were repairable when promoted are still repaired — a
//!    previously-fixed failure mode coming back fails CI here.

use clara_core::{ClaraConfig, DifferentialOracle, OracleVerdict};
use clara_corpus::{
    all_problems_all_langs, load_regression_dir, regression_dir, replay_entry, Problem, ReplayOutcome,
};

fn problem_named(name: &str) -> Problem {
    all_problems_all_langs()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("regression corpus references unknown problem {name:?}"))
}

fn oracle_for(problem: &Problem) -> DifferentialOracle {
    let (oracle, usable) = DifferentialOracle::new(
        problem.lang,
        problem.spec.clone(),
        problem.seeds.iter().copied(),
        ClaraConfig::default(),
    );
    assert!(usable > 0, "no usable reference solutions for {}", problem.name);
    oracle
}

#[test]
fn committed_regression_corpus_replays_and_stays_sound() {
    let files = load_regression_dir(&regression_dir()).expect("corpus/regression is readable");
    // Silent deletion of the corpus must not pass as vacuous success: the
    // repo commits one file per (problem, language) pair.
    assert!(
        files.len() >= 4,
        "expected at least 4 committed regression files, found {} in {}",
        files.len(),
        regression_dir().display()
    );

    for file in &files {
        let problem = problem_named(&file.problem);
        assert!(!file.entries.is_empty(), "{}: empty regression file", file.problem);
        let oracle = oracle_for(&problem);

        for entry in &file.entries {
            let outcome = replay_entry(&problem, entry);
            assert_eq!(
                outcome,
                ReplayOutcome::Reproduced,
                "{} seed #{}: minimized chain {:?} no longer reproduces",
                file.problem,
                entry.seed_index,
                entry.steps.iter().map(|s| s.op.as_str()).collect::<Vec<_>>(),
            );

            let verdict = oracle.check(&entry.source);
            assert!(
                !verdict.is_soundness_violation(),
                "{} seed #{}: unsound repair on regression mutant:\n{}",
                file.problem,
                entry.seed_index,
                entry.source,
            );
            if entry.repaired {
                match verdict {
                    OracleVerdict::Repaired(check) => assert!(check.sound),
                    other => panic!(
                        "{} seed #{}: previously-repaired mutant regressed to {other:?}:\n{}",
                        file.problem, entry.seed_index, entry.source,
                    ),
                }
            }
        }
    }
}
