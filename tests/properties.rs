//! Cross-crate property-based tests: invariants of the matching relation,
//! the repair algorithm and the corpus generator that must hold for *every*
//! seed/variant combination, not just the hand-picked examples.

use proptest::prelude::*;

use clara::prelude::*;
use clara_core::AnalyzedProgram;
use clara_model::Fuel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn problems() -> Vec<Problem> {
    clara::corpus::all_problems()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// The matching relation is reflexive: every analysable seed matches
    /// itself with the identity witness (part of the equivalence-relation
    /// argument of §4).
    #[test]
    fn matching_is_reflexive(problem_index in 0usize..9, seed_index in 0usize..4) {
        let problems = problems();
        let problem = &problems[problem_index % problems.len()];
        let seed = problem.seeds[seed_index % problem.seeds.len()];
        if let Ok(analyzed) = AnalyzedProgram::from_text(seed, problem.entry, &problem.inputs(), Fuel::default()) {
            let witness = find_matching(&analyzed, &analyzed).expect("a program matches itself");
            for (from, to) in &witness {
                prop_assert_eq!(from, to);
            }
        }
    }

    /// Variable renaming never changes the cluster structure: a seed and its
    /// renamed variant always land in the same cluster.
    #[test]
    fn renaming_preserves_dynamic_equivalence(problem_index in 0usize..9, seed_index in 0usize..4, rng_seed in 0u64..1000) {
        let problems = problems();
        let problem = &problems[problem_index % problems.len()];
        let seed = problem.seeds[seed_index % problem.seeds.len()];
        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        let renamed_program = clara::corpus::rename_variables(&problem.parse(seed), &mut rng);
        let renamed = clara_lang::program_to_string(&renamed_program);

        let original = AnalyzedProgram::from_text(seed, problem.entry, &problem.inputs(), Fuel::default());
        let variant = AnalyzedProgram::from_text(&renamed, problem.entry, &problem.inputs(), Fuel::default());
        if let (Ok(original), Ok(variant)) = (original, variant) {
            prop_assert!(
                find_matching(&original, &variant).is_some(),
                "renamed variant no longer matches:\n{}",
                renamed
            );
        }
    }

    /// Every fault-injected mutant that can be analysed is repaired against
    /// its own seed's cluster, and the repair cost is positive (the mutant
    /// really is incorrect).
    #[test]
    fn mutants_are_repairable_against_their_seed(problem_index in 0usize..3, rng_seed in 0u64..500) {
        let problems = problems();
        let problem = &problems[problem_index % 3]; // MOOC problems only: fastest specs
        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        let seed = problem.seeds[(rng_seed as usize) % problem.seeds.len()];
        if let Some(mutant) = clara::corpus::mutate(problem, seed, 1, &mut rng) {
            let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
            engine.add_correct_solution(seed).unwrap();
            if let Ok(outcome) = engine.repair_source(&mutant.source) {
                if let Some(repair) = outcome.result.best {
                    prop_assert!(repair.total_cost > 0, "mutant repaired with zero cost");
                    prop_assert_ne!(repair.verified, Some(false));
                }
            }
        }
    }

    /// Round-trip closure under mutation: every mutant the surface-IR
    /// engine emits pretty-prints and re-parses through its own frontend to
    /// the same structural hash, for both MiniPy and MiniC. (The engine
    /// guarantees mutants re-parse; this property pins the stronger
    /// invariant that the re-parsed form is a pretty-printer fixpoint, so
    /// the structural hash — the server's cache key — is stable across a
    /// resubmission of the canonical text.)
    #[test]
    fn mutants_round_trip_through_their_own_frontend(problem_index in 0usize..12, rng_seed in 0u64..400) {
        let problems = clara::corpus::all_problems_all_langs();
        let problem = &problems[problem_index % problems.len()];
        let config = clara::corpus::MutationConfig {
            seed: rng_seed,
            target_wrong_answer: 3,
            max_attempts: 60,
        };
        let (mutants, stats) = clara::corpus::derive_mutants(problem, &config);
        prop_assert_eq!(stats.reparse_failures, 0, "unparseable mutant emitted for {}", problem.name);
        for mutant in &mutants {
            let (canonical, canonical_hash) = match problem.lang {
                clara_model::frontend::Lang::MiniPy => {
                    let parsed = clara_lang::parse_program(&mutant.source).expect("mutant re-parses");
                    prop_assert_eq!(parsed.structural_hash(), mutant.structural_hash);
                    let pretty = clara_lang::program_to_string(&parsed);
                    let reparsed = clara_lang::parse_program(&pretty).expect("pretty output re-parses");
                    (pretty, reparsed.structural_hash())
                }
                clara_model::frontend::Lang::MiniC => {
                    let parsed = clara_c::parse_c_program(&mutant.source).expect("mutant re-parses");
                    prop_assert_eq!(parsed.structural_hash(), mutant.structural_hash);
                    let pretty = clara_c::c_program_to_string(&parsed);
                    let reparsed = clara_c::parse_c_program(&pretty).expect("pretty output re-parses");
                    (pretty, reparsed.structural_hash())
                }
            };
            prop_assert_eq!(
                canonical_hash,
                mutant.structural_hash,
                "pretty -> re-parse changed the structural hash of a {} mutant:\n{}\n->\n{}",
                problem.name,
                &mutant.source,
                &canonical
            );
        }
    }

    /// Grading is deterministic and consistent between the spec-level API and
    /// the engine-level zero-cost-repair check.
    #[test]
    fn correct_seeds_always_repair_with_zero_cost(problem_index in 0usize..9, seed_index in 0usize..3) {
        let problems = problems();
        let problem = &problems[problem_index % problems.len()];
        let seed = problem.seeds[seed_index % problem.seeds.len()];
        let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
        if engine.add_correct_solution(seed).is_ok() {
            let outcome = engine.repair_source(seed).unwrap();
            prop_assert_eq!(outcome.result.best.unwrap().total_cost, 0);
        }
    }
}
