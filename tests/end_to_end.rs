//! Cross-crate integration tests: the full Clara pipeline (parse → lower →
//! cluster → repair → feedback → verify) on the paper's running examples and
//! on synthetic corpora for every assignment.

use clara::prelude::*;
use clara_core::Feedback;

const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

const I1: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

const I2: &str = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i]=float((i)*poly[i])
    return result
";

fn derivatives_engine(extra_correct: &[&str]) -> Clara {
    let problem = clara::corpus::mooc::derivatives();
    let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
    for seed in [C1, C2].iter().chain(extra_correct) {
        engine.add_correct_solution(seed).expect("seed solutions analyse");
    }
    engine
}

#[test]
fn paper_fig2_repairs_end_to_end() {
    let engine = derivatives_engine(&[]);
    // I1: one modification in the return statement (Fig. 2(g)).
    let outcome = engine.repair_source(I1).unwrap();
    let repair = outcome.result.best.expect("I1 repairable");
    assert_eq!(repair.verified, Some(true));
    assert_eq!(repair.modified_expression_count(), 1);
    // I2: about three modifications (Fig. 2(h)).
    let outcome = engine.repair_source(I2).unwrap();
    let repair = outcome.result.best.expect("I2 repairable");
    assert_eq!(repair.verified, Some(true));
    assert!(repair.modified_expression_count() >= 2);
    assert!(repair.modified_expression_count() <= 4);
}

#[test]
fn repaired_attempts_pass_the_grading_tests_when_reinterpreted() {
    // The repaired model program must agree with the cluster representative;
    // here we additionally check the generated feedback references real lines
    // of the student program.
    let engine = derivatives_engine(&[]);
    let outcome = engine.repair_source(I2).unwrap();
    let feedback = outcome.feedback;
    assert!(feedback.is_repair_feedback());
    for line in feedback.lines() {
        assert!(line.contains("line"), "feedback line without location: {line}");
    }
}

#[test]
fn grading_and_repair_agree_on_correctness() {
    let problem = clara::corpus::mooc::derivatives();
    let engine = derivatives_engine(&[]);
    // A correct program repairs with cost 0; an incorrect one with cost > 0.
    assert!(problem.grade_source(C2).unwrap());
    let outcome = engine.repair_source(C2).unwrap();
    assert_eq!(outcome.result.best.unwrap().total_cost, 0);
    assert!(!problem.grade_source(I1).unwrap());
    let outcome = engine.repair_source(I1).unwrap();
    assert!(outcome.result.best.unwrap().total_cost > 0);
}

#[test]
fn clara_and_autograder_on_the_same_attempt() {
    // Clara can repair I2 (needs a subscript-assignment restructuring); the
    // weak-error-model baseline cannot — the Fig. 8/appendix-B situation.
    let problem = clara::corpus::mooc::derivatives();
    let engine = derivatives_engine(&[]);
    let clara_repair = engine.repair_source(I2).unwrap();
    assert!(clara_repair.result.best.is_some());

    let grader = AutoGrader::mooc_scaled();
    let parsed = parse_program(I2).unwrap();
    assert!(grader.repair(&parsed, &problem.spec).is_none());
}

#[test]
fn every_problem_supports_the_full_pipeline() {
    // For each of the nine assignments: generate a small corpus, cluster it,
    // and repair a handful of incorrect attempts. At least half of the
    // analysable attempts must be repaired with a verified repair.
    for problem in clara::corpus::all_problems() {
        let dataset = generate_dataset(
            &problem,
            DatasetConfig { correct_count: 15, incorrect_count: 6, seed: 1234, ..DatasetConfig::default() },
        );
        let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
        let mut usable = 0;
        for attempt in &dataset.correct {
            if engine.add_correct_solution(&attempt.source).is_ok() {
                usable += 1;
            }
        }
        assert!(usable >= 10, "{}: only {usable} usable correct solutions", problem.name);
        assert!(!engine.clusters().is_empty(), "{}: no clusters", problem.name);

        let mut analysable = 0;
        let mut repaired = 0;
        for attempt in &dataset.incorrect {
            if let Ok(outcome) = engine.repair_source(&attempt.source) {
                analysable += 1;
                if let Some(repair) = outcome.result.best {
                    repaired += 1;
                    assert_ne!(
                        repair.verified,
                        Some(false),
                        "{}: unsound repair for attempt:\n{}\nactions: {:#?}\nvar_map: {:?}\nadded: {:?}\ndeleted: {:?}",
                        problem.name,
                        attempt.source,
                        repair.actions,
                        repair.var_map,
                        repair.added_vars,
                        repair.deleted_vars
                    );
                }
            }
        }
        assert!(
            repaired * 2 >= analysable,
            "{}: repaired only {repaired} of {analysable} analysable attempts",
            problem.name
        );
    }
}

#[test]
fn empty_and_unsupported_attempts_are_handled_gracefully() {
    let engine = derivatives_engine(&[]);
    // Empty attempt: whole-program rewrite, generic strategy feedback.
    let outcome = engine.repair_source("def computeDeriv(poly):\n    pass\n").unwrap();
    assert!(outcome.result.best.is_some());
    assert!(matches!(outcome.feedback, Feedback::GenericStrategy(_)));
    // Unsupported attempt: analysis error, no panic.
    let err =
        engine.repair_source("def h(x):\n    return x\n\ndef computeDeriv(poly):\n    return h(poly)\n");
    assert!(err.is_err());
    // Unparsable attempt: analysis error as well.
    let err = engine.repair_source("def computeDeriv(poly:\n    return\n");
    assert!(err.is_err());
}

#[test]
fn feedback_mentions_mined_expressions_from_other_solutions() {
    // The repair for an attempt close to C2's style must be expressible even
    // though the cluster representative is C1 — the diversity-of-repairs
    // motivation of §2.1.
    let engine = derivatives_engine(&[]);
    let attempt = "\
def computeDeriv(poly):
    out = []
    for i in xrange(1,len(poly)):
        out += [float(i)*poly[i+1]]
    if len(out)==0:
        return [0.0]
    return out
";
    let outcome = engine.repair_source(attempt).unwrap();
    let repair = outcome.result.best.expect("repairable");
    assert!(repair.total_cost <= 3);
    assert_eq!(repair.verified, Some(true));
}

#[test]
fn cached_and_uncached_repair_agree_across_the_synthetic_dataset() {
    // The signature cache must be a pure optimisation: across a whole
    // synthetic dataset (correct pool clustered once, every incorrect
    // attempt repaired), the cached and uncached matching paths must produce
    // identical repair costs and winning clusters.
    use clara_model::Fuel;

    for problem in [clara::corpus::mooc::derivatives(), clara::corpus::mooc::odd_tuples()] {
        let dataset = generate_dataset(
            &problem,
            DatasetConfig { correct_count: 10, incorrect_count: 8, seed: 17, ..DatasetConfig::default() },
        );
        let inputs = problem.inputs();
        let analyzed: Vec<AnalyzedProgram> = dataset
            .correct
            .iter()
            .filter_map(|attempt| {
                AnalyzedProgram::from_text(&attempt.source, problem.entry, &inputs, Fuel::default()).ok()
            })
            .collect();
        let clusters = cluster_programs(analyzed);
        let cached = RepairConfig { use_signature_cache: true, ..RepairConfig::default() };
        let uncached = RepairConfig { use_signature_cache: false, ..RepairConfig::default() };

        for attempt in &dataset.incorrect {
            let Ok(analyzed) =
                AnalyzedProgram::from_text(&attempt.source, problem.entry, &inputs, Fuel::default())
            else {
                continue;
            };
            let a = repair_attempt(&clusters, &analyzed, &inputs, &cached);
            let b = repair_attempt(&clusters, &analyzed, &inputs, &uncached);
            assert_eq!(a.candidate_clusters, b.candidate_clusters, "attempt {}", attempt.id);
            match (&a.best, &b.best) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.total_cost, y.total_cost, "attempt {}", attempt.id);
                    assert_eq!(x.cluster_index, y.cluster_index, "attempt {}", attempt.id);
                    assert_eq!(x.verified, y.verified, "attempt {}", attempt.id);
                }
                (None, None) => {}
                other => panic!("cached/uncached disagree on attempt {}: {other:?}", attempt.id),
            }
        }
    }
}
