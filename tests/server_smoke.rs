//! Integration smoke test of the serving front end: spawns the real
//! `clara-cli` binary, drives the NDJSON protocol over its stdio, and
//! asserts the meaningful exit codes of the one-shot subcommands.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use clara_server::{Response, Status};

const CLI: &str = env!("CARGO_BIN_EXE_clara-cli");

const CORRECT: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

const INCORRECT: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

/// §6.2 (1): no correct solution shares this nested-loop control flow, so no
/// repair exists.
const NO_REPAIR: &str = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        for j in range(i):
            for k in range(j):
                result.append(float(poly[i]))
    return result
";

const GARBAGE: &str = "def broken(:\n    return ][\n";

const BUGGY_FIB_C: &str = "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b < k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
";

const CORRECT_FIB_C: &str = "\
int fib(int k) {
    int prev = 1;
    int cur = 1;
    int count = 1;
    while (cur <= k) {
        int temp = cur;
        cur = cur + prev;
        prev = temp;
        count = count + 1;
    }
    printf(\"%d\\n\", count);
    return 0;
}
";

fn request_line_for(id: u64, problem: &str, lang: Option<&str>, source: &str) -> String {
    serde_json::to_string(&clara_server::Request {
        id,
        problem: problem.to_owned(),
        lang: lang.map(str::to_owned),
        source: source.to_owned(),
        learn: None,
        trace: None,
    })
    .unwrap()
}

fn request_line(id: u64, source: &str) -> String {
    request_line_for(id, "derivatives", None, source)
}

#[test]
fn serve_answers_ndjson_requests_and_shuts_down_cleanly() {
    let mut child = Command::new(CLI)
        .args(["serve", "derivatives", "--pool-size", "12", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning clara-cli serve");

    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        for (id, source) in [(1u64, CORRECT), (2, INCORRECT), (3, GARBAGE)] {
            writeln!(stdin, "{}", request_line(id, source)).expect("writing request");
        }
    }
    // Closing stdin is the shutdown signal (EOF after in-flight jobs drain).
    drop(child.stdin.take());

    let stdout = child.stdout.take().expect("piped stdout");
    let responses: Vec<Response> = BufReader::new(stdout)
        .lines()
        .map(|line| {
            let line = line.expect("reading response line");
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("malformed response `{line}`: {e}"))
        })
        .collect();
    assert_eq!(responses.len(), 3, "one response per request");

    let by_id = |id: u64| {
        responses
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no response with id {id}: {responses:?}"))
    };
    assert_eq!(by_id(1).status, Status::Correct);
    let repaired = by_id(2);
    assert_eq!(repaired.status, Status::Repaired);
    assert!(!repaired.feedback.is_empty(), "repair feedback must not be empty");
    assert!(repaired.cost.unwrap_or(0) > 0);
    let garbage = by_id(3);
    assert_eq!(garbage.status, Status::Error);
    assert!(garbage.error.as_deref().unwrap_or("").contains("syntax error"), "{garbage:?}");

    let status = child.wait().expect("waiting for clara-cli serve");
    assert!(status.success(), "serve must exit 0 on EOF, got {status:?}");
}

/// The MiniC end-to-end smoke: `clara-cli serve` brings a MiniC problem
/// online (parse → cluster), repairs a buggy C submission through the same
/// NDJSON protocol, and the feedback renders expressions in C syntax.
#[test]
fn serve_handles_minic_submissions_end_to_end() {
    let mut child = Command::new(CLI)
        .args(["serve", "fibonacci_c", "--pool-size", "8", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning clara-cli serve");

    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        let lines = [
            request_line_for(1, "fibonacci_c", Some("c"), BUGGY_FIB_C),
            request_line_for(2, "fibonacci_c", None, CORRECT_FIB_C),
            // A Python submission tagged as such against a C problem is a
            // named client error, not a syntax error.
            request_line_for(3, "fibonacci_c", Some("python"), CORRECT),
        ];
        for line in lines {
            writeln!(stdin, "{line}").expect("writing request");
        }
    }
    drop(child.stdin.take());

    let stdout = child.stdout.take().expect("piped stdout");
    let responses: Vec<Response> = BufReader::new(stdout)
        .lines()
        .map(|line| {
            let line = line.expect("reading response line");
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("malformed response `{line}`: {e}"))
        })
        .collect();
    assert_eq!(responses.len(), 3, "one response per request: {responses:?}");
    let by_id = |id: u64| responses.iter().find(|r| r.id == id).expect("response by id");

    let repaired = by_id(1);
    assert_eq!(repaired.status, Status::Repaired, "{repaired:?}");
    let text = repaired.feedback.join("\n");
    assert!(text.contains("`b <= k`"), "expected the C-syntax condition fix, got: {text}");
    assert_eq!(by_id(2).status, Status::Correct, "{:?}", by_id(2));
    let mismatch = by_id(3);
    assert_eq!(mismatch.status, Status::Error);
    assert!(mismatch.error.as_deref().unwrap_or("").contains("expects minic submissions"), "{mismatch:?}");

    let status = child.wait().expect("waiting for clara-cli serve");
    assert!(status.success(), "serve must exit 0 on EOF, got {status:?}");
}

/// Correct `special_number_c` submission (the problem's reference); at two
/// shards the consistent-hash ring places `special_number_c` on shard 0 and
/// `derivatives`/`fibonacci_c` on shard 1, so this request set exercises
/// both sides of the fleet.
const CORRECT_SPECIAL_C: &str = "\
int special(int n) {
    int s = 0;
    int m = n;
    while (m > 0) {
        int d = m % 10;
        s = s + d * d * d;
        m = m / 10;
    }
    if (s == n) {
        printf(\"YES\\n\");
    } else {
        printf(\"NO\\n\");
    }
    return 0;
}
";

/// Spawns `clara-cli serve` with `args`, keeping stdin open (EOF is the
/// shutdown signal), and returns the child plus the NDJSON endpoint it
/// reported on stderr.
fn spawn_listener(args: &[String]) -> (std::process::Child, String) {
    let mut child = Command::new(CLI)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning clara-cli serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        // Forward the endpoint line, then keep draining so the child never
        // blocks on a full stderr pipe.
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("(ndjson endpoint on ") {
                let _ = tx.send(rest.trim_end_matches(')').to_owned());
            }
        }
    });
    let addr = rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("serve process reports its NDJSON endpoint");
    (child, addr)
}

/// The PR 6 fleet smoke: two real `--shard i/2` serve processes plus a
/// router process, all over loopback TCP. Requests for problems owned by
/// each shard round-trip through the router with their ids intact, and the
/// router's own stats report accounts for every forwarded request.
#[test]
fn router_forwards_to_two_shard_processes_over_tcp() {
    let problems = ["derivatives", "fibonacci_c", "special_number_c"];
    let shard_procs: Vec<(std::process::Child, String)> = (0..2)
        .map(|i| {
            let mut args: Vec<String> = vec!["serve".into()];
            args.extend(problems.iter().map(|p| p.to_string()));
            args.extend(
                ["--listen", "127.0.0.1:0", "--pool-size", "8", "--workers", "1", "--no-learn"]
                    .map(String::from),
            );
            args.extend(["--shard".into(), format!("{i}/2")]);
            spawn_listener(&args)
        })
        .collect();

    // Both shards must own at least one of the three problems, or the test
    // silently stops covering the fleet path.
    let ring = clara_server::HashRing::new(2);
    let owners: Vec<usize> =
        [("derivatives", "minipy"), ("fibonacci_c", "minic"), ("special_number_c", "minic")]
            .iter()
            .map(|(p, l)| ring.owner(p, l))
            .collect();
    assert!(owners.contains(&0) && owners.contains(&1), "ring no longer splits {owners:?}");

    let shard_addrs: Vec<String> = shard_procs.iter().map(|(_, addr)| addr.clone()).collect();
    let router_args: Vec<String> =
        ["serve", "--router", "--shards", &shard_addrs.join(","), "--listen", "127.0.0.1:0"]
            .map(String::from)
            .to_vec();
    let (mut router, router_addr) = spawn_listener(&router_args);

    let stream = std::net::TcpStream::connect(&router_addr).expect("connecting to router");
    let mut writer = stream.try_clone().expect("cloning stream");
    let mut reader = BufReader::new(stream);
    let lines = [
        request_line_for(1, "derivatives", None, CORRECT),
        request_line_for(2, "derivatives", Some("python"), INCORRECT),
        request_line_for(3, "fibonacci_c", Some("c"), BUGGY_FIB_C),
        request_line_for(4, "special_number_c", None, CORRECT_SPECIAL_C),
    ];
    for line in &lines {
        writeln!(writer, "{line}").expect("writing request");
    }
    let responses: Vec<Response> = (0..lines.len())
        .map(|_| {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reading response line");
            serde_json::from_str(line.trim()).unwrap_or_else(|e| panic!("malformed response `{line}`: {e}"))
        })
        .collect();
    let by_id = |id: u64| {
        responses
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no response with id {id}: {responses:?}"))
    };
    assert_eq!(by_id(1).status, Status::Correct, "{:?}", by_id(1));
    assert_eq!(by_id(2).status, Status::Repaired, "{:?}", by_id(2));
    let fib = by_id(3);
    assert_eq!(fib.status, Status::Repaired, "{fib:?}");
    assert!(fib.feedback.join("\n").contains("`b <= k`"), "{fib:?}");
    assert_eq!(by_id(4).status, Status::Correct, "{:?}", by_id(4));

    // A stats request against the router is answered by the router itself
    // and accounts for every forwarded feedback request.
    writeln!(writer, r#"{{"id":9,"stats":true}}"#).expect("writing stats request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reading stats line");
    let stats: clara_server::RouterReport = serde_json::from_str(line.trim()).expect("stats json");
    assert!(stats.router, "{stats:?}");
    assert_eq!(stats.shards, 2, "{stats:?}");
    assert_eq!(stats.forwarded, 4, "{stats:?}");
    assert_eq!(stats.upstream_errors, 0, "{stats:?}");
    assert!(stats.upstreams.iter().all(|u| u.forwarded > 0), "every shard must see traffic: {stats:?}");

    // stdin EOF shuts each process down in dependency order: router first
    // (so it stops holding upstream connections), then the shards.
    drop(writer);
    drop(reader);
    drop(router.stdin.take());
    let status = router.wait().expect("waiting for router");
    assert!(status.success(), "router must exit 0 on EOF, got {status:?}");
    for (mut shard, _) in shard_procs {
        drop(shard.stdin.take());
        let status = shard.wait().expect("waiting for shard");
        assert!(status.success(), "shard must exit 0 on EOF, got {status:?}");
    }
}

/// A correct `derivatives` solution the seed pool never saw (renamed
/// variables): the learn-replication probe of the failover test.
const NOVEL_CORRECT: &str = "\
def computeDeriv(poly):
    deriv = []
    for k in range(1, len(poly)):
        deriv.append(float(poly[k]*k))
    if deriv == []:
        return [0.0]
    return deriv
";

/// The PR 7 failover smoke, three real processes over loopback TCP: two
/// `--shard i/2` serve processes (at replication factor 2 each holds the
/// other's replica) plus a router. A learn is replicated to both shards;
/// then the shard owning `derivatives` is killed and the router must serve
/// the problem from the ring successor within its retry budget.
#[test]
fn router_fails_over_to_the_ring_successor_when_the_owner_dies() {
    let mut shard_procs: Vec<(std::process::Child, String)> = (0..2)
        .map(|i| {
            let mut args: Vec<String> = vec!["serve".into(), "derivatives".into()];
            args.extend(["--listen", "127.0.0.1:0", "--pool-size", "8", "--workers", "1"].map(String::from));
            args.extend(["--shard".into(), format!("{i}/2")]);
            spawn_listener(&args)
        })
        .collect();
    let shard_addrs: Vec<String> = shard_procs.iter().map(|(_, addr)| addr.clone()).collect();
    let router_args: Vec<String> =
        ["serve", "--router", "--shards", &shard_addrs.join(","), "--listen", "127.0.0.1:0"]
            .map(String::from)
            .to_vec();
    let (mut router, router_addr) = spawn_listener(&router_args);

    let stream = std::net::TcpStream::connect(&router_addr).expect("connecting to router");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(120))).expect("read timeout");
    let mut writer = stream.try_clone().expect("cloning stream");
    let mut reader = BufReader::new(stream);
    fn exchange(
        writer: &mut std::net::TcpStream,
        reader: &mut BufReader<std::net::TcpStream>,
        line: &str,
    ) -> Response {
        writeln!(writer, "{line}").expect("writing request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reading response line");
        serde_json::from_str(reply.trim()).unwrap_or_else(|e| panic!("malformed response `{reply}`: {e}"))
    }

    // A healthy read, then a learn: the router writes the learn to the
    // owner AND the ring successor, so the coming crash loses nothing.
    let healthy = exchange(&mut writer, &mut reader, &request_line_for(1, "derivatives", None, CORRECT));
    assert_eq!(healthy.status, Status::Correct, "{healthy:?}");
    let learn = serde_json::to_string(&clara_server::Request {
        id: 2,
        problem: "derivatives".to_owned(),
        lang: None,
        source: NOVEL_CORRECT.to_owned(),
        learn: Some(true),
        trace: None,
    })
    .unwrap();
    let learned = exchange(&mut writer, &mut reader, &learn);
    assert_eq!(learned.status, Status::Correct, "{learned:?}");

    writeln!(writer, r#"{{"id":3,"stats":true}}"#).expect("writing stats request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reading stats line");
    let stats: clara_server::RouterReport = serde_json::from_str(line.trim()).expect("stats json");
    assert_eq!(stats.replicated_learns, 1, "the learn must reach the successor too: {stats:?}");
    assert_eq!(stats.failovers, 0, "{stats:?}");

    // Kill the owner. Reads must fail over to the successor's replica.
    let owner = clara_server::HashRing::new(2).owner("derivatives", "minipy");
    shard_procs[owner].0.kill().expect("killing the owner shard");
    shard_procs[owner].0.wait().expect("reaping the owner shard");

    let survived = exchange(&mut writer, &mut reader, &request_line_for(4, "derivatives", None, INCORRECT));
    assert_eq!(survived.status, Status::Repaired, "served by the successor: {survived:?}");
    let relearned =
        exchange(&mut writer, &mut reader, &request_line_for(5, "derivatives", None, NOVEL_CORRECT));
    assert_eq!(relearned.status, Status::Correct, "the replicated learn survives: {relearned:?}");

    writeln!(writer, r#"{{"id":6,"stats":true}}"#).expect("writing stats request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reading stats line");
    let stats: clara_server::RouterReport = serde_json::from_str(line.trim()).expect("stats json");
    assert!(stats.failovers >= 1, "the outage must be served via failover: {stats:?}");

    drop(writer);
    drop(reader);
    drop(router.stdin.take());
    let status = router.wait().expect("waiting for router");
    assert!(status.success(), "router must exit 0 on EOF, got {status:?}");
    let (mut survivor, _) = shard_procs.remove(1 - owner);
    drop(survivor.stdin.take());
    let status = survivor.wait().expect("waiting for the surviving shard");
    assert!(status.success(), "survivor must exit 0 on EOF, got {status:?}");
}

/// Like [`spawn_listener`], but also captures every stderr line the child
/// emits (structured logs included) into a shared buffer for inspection.
fn spawn_listener_logged(
    args: &[String],
) -> (std::process::Child, String, std::sync::Arc<std::sync::Mutex<Vec<String>>>) {
    let mut child = Command::new(CLI)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning clara-cli serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let logs: std::sync::Arc<std::sync::Mutex<Vec<String>>> = std::sync::Arc::default();
    let sink = std::sync::Arc::clone(&logs);
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("(ndjson endpoint on ") {
                let _ = tx.send(rest.trim_end_matches(')').to_owned());
            }
            sink.lock().unwrap().push(line);
        }
    });
    let addr = rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("serve process reports its NDJSON endpoint");
    (child, addr, logs)
}

/// Polls a captured log buffer until a line containing every needle shows
/// up (the capture thread races the assertion) or the deadline passes.
fn wait_for_log_line(logs: &std::sync::Mutex<Vec<String>>, needles: &[&str]) -> Option<String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if let Some(line) = logs.lock().unwrap().iter().find(|line| needles.iter().all(|n| line.contains(n)))
        {
            return Some(line.clone());
        }
        if std::time::Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// The PR 8 observability smoke: a client-supplied trace id must ride a
/// request through the router into the shard fleet and come out in every
/// process's structured logs — including on the failover path, where the
/// retry against the dead owner and the successor's answer must both be
/// attributable to the same trace. Shards run with `--slow-ms 0` so every
/// request dumps its span breakdown.
#[test]
fn trace_ids_propagate_from_router_to_shards_across_failover() {
    let mut shard_procs: Vec<(std::process::Child, String, _)> = (0..2)
        .map(|i| {
            let mut args: Vec<String> = vec!["serve".into(), "derivatives".into()];
            args.extend(
                ["--listen", "127.0.0.1:0", "--pool-size", "8", "--workers", "1", "--slow-ms", "0"]
                    .map(String::from),
            );
            args.extend(["--shard".into(), format!("{i}/2")]);
            spawn_listener_logged(&args)
        })
        .collect();
    let shard_addrs: Vec<String> = shard_procs.iter().map(|(_, addr, _)| addr.clone()).collect();
    let router_args: Vec<String> =
        ["serve", "--router", "--shards", &shard_addrs.join(","), "--listen", "127.0.0.1:0"]
            .map(String::from)
            .to_vec();
    let (mut router, router_addr, router_logs) = spawn_listener_logged(&router_args);

    let stream = std::net::TcpStream::connect(&router_addr).expect("connecting to router");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(120))).expect("read timeout");
    let mut writer = stream.try_clone().expect("cloning stream");
    let mut reader = BufReader::new(stream);
    let traced_request = |id: u64, trace: &str| {
        serde_json::to_string(&clara_server::Request {
            id,
            problem: "derivatives".to_owned(),
            lang: None,
            source: INCORRECT.to_owned(),
            learn: None,
            trace: Some(trace.to_owned()),
        })
        .unwrap()
    };
    let exchange = |writer: &mut std::net::TcpStream,
                    reader: &mut BufReader<std::net::TcpStream>,
                    line: &str|
     -> Response {
        writeln!(writer, "{line}").expect("writing request");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reading response line");
        serde_json::from_str(reply.trim()).unwrap_or_else(|e| panic!("malformed response `{reply}`: {e}"))
    };

    // Healthy path: the trace id is echoed in the response and shows up in
    // the owning shard's slow-request span dump.
    let owner = clara_server::HashRing::new(2).owner("derivatives", "minipy");
    let healthy = exchange(&mut writer, &mut reader, &traced_request(1, "feedface00000001"));
    assert_eq!(healthy.status, Status::Repaired, "{healthy:?}");
    assert_eq!(healthy.trace.as_deref(), Some("feedface00000001"), "{healthy:?}");
    let owner_line = wait_for_log_line(
        &shard_procs[owner].2,
        &["\"event\":\"slow_request\"", "\"trace_id\":\"feedface00000001\""],
    )
    .expect("the owner shard logs the traced request");
    assert!(owner_line.contains("\"spans\":"), "span breakdown attached: {owner_line}");

    // Kill the owner: the router's retry/failover events and the ring
    // successor's span dump must carry the SAME trace id the client sent.
    shard_procs[owner].0.kill().expect("killing the owner shard");
    shard_procs[owner].0.wait().expect("reaping the owner shard");
    let survived = exchange(&mut writer, &mut reader, &traced_request(2, "feedface00000002"));
    assert_eq!(survived.status, Status::Repaired, "served by the successor: {survived:?}");
    assert_eq!(survived.trace.as_deref(), Some("feedface00000002"), "{survived:?}");
    wait_for_log_line(&router_logs, &["\"event\":\"failover\"", "\"trace_id\":\"feedface00000002\""])
        .expect("the router logs the failover under the client's trace id");
    wait_for_log_line(
        &shard_procs[1 - owner].2,
        &["\"event\":\"slow_request\"", "\"trace_id\":\"feedface00000002\""],
    )
    .expect("the surviving shard logs the failed-over request under the same trace id");

    drop(writer);
    drop(reader);
    drop(router.stdin.take());
    let status = router.wait().expect("waiting for router");
    assert!(status.success(), "router must exit 0 on EOF, got {status:?}");
    let (mut survivor, _, _) = shard_procs.remove(1 - owner);
    drop(survivor.stdin.take());
    let status = survivor.wait().expect("waiting for the surviving shard");
    assert!(status.success(), "survivor must exit 0 on EOF, got {status:?}");
}

fn run_repair(source: &str) -> i32 {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("clara-smoke-{}-{:x}.py", std::process::id(), source.len()));
    std::fs::write(&path, source).expect("writing attempt file");
    let status = Command::new(CLI)
        .args(["repair", "derivatives"])
        .arg(&path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running clara-cli repair");
    let _ = std::fs::remove_file(&path);
    status.code().expect("exit code")
}

#[test]
fn repair_exit_codes_are_meaningful() {
    // 0 — a repair was found (and also for already-correct attempts).
    assert_eq!(run_repair(INCORRECT), 0);
    assert_eq!(run_repair(CORRECT), 0);
    // 1 — analysable but no repair exists.
    assert_eq!(run_repair(NO_REPAIR), 1);
    // 2 — the attempt does not parse.
    assert_eq!(run_repair(GARBAGE), 2);
}

#[test]
fn usage_errors_exit_2() {
    let status = Command::new(CLI)
        .args(["frobnicate"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running clara-cli");
    assert_eq!(status.code(), Some(2));
    let status = Command::new(CLI)
        .args(["repair", "no-such-problem", "/dev/null"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running clara-cli");
    assert_eq!(status.code(), Some(2));
}
