//! Integration smoke test of the serving front end: spawns the real
//! `clara-cli` binary, drives the NDJSON protocol over its stdio, and
//! asserts the meaningful exit codes of the one-shot subcommands.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use clara_server::{Response, Status};

const CLI: &str = env!("CARGO_BIN_EXE_clara-cli");

const CORRECT: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

const INCORRECT: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

/// §6.2 (1): no correct solution shares this nested-loop control flow, so no
/// repair exists.
const NO_REPAIR: &str = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        for j in range(i):
            for k in range(j):
                result.append(float(poly[i]))
    return result
";

const GARBAGE: &str = "def broken(:\n    return ][\n";

const BUGGY_FIB_C: &str = "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b < k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
";

const CORRECT_FIB_C: &str = "\
int fib(int k) {
    int prev = 1;
    int cur = 1;
    int count = 1;
    while (cur <= k) {
        int temp = cur;
        cur = cur + prev;
        prev = temp;
        count = count + 1;
    }
    printf(\"%d\\n\", count);
    return 0;
}
";

fn request_line_for(id: u64, problem: &str, lang: Option<&str>, source: &str) -> String {
    serde_json::to_string(&clara_server::Request {
        id,
        problem: problem.to_owned(),
        lang: lang.map(str::to_owned),
        source: source.to_owned(),
        learn: None,
    })
    .unwrap()
}

fn request_line(id: u64, source: &str) -> String {
    request_line_for(id, "derivatives", None, source)
}

#[test]
fn serve_answers_ndjson_requests_and_shuts_down_cleanly() {
    let mut child = Command::new(CLI)
        .args(["serve", "derivatives", "--pool-size", "12", "--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning clara-cli serve");

    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        for (id, source) in [(1u64, CORRECT), (2, INCORRECT), (3, GARBAGE)] {
            writeln!(stdin, "{}", request_line(id, source)).expect("writing request");
        }
    }
    // Closing stdin is the shutdown signal (EOF after in-flight jobs drain).
    drop(child.stdin.take());

    let stdout = child.stdout.take().expect("piped stdout");
    let responses: Vec<Response> = BufReader::new(stdout)
        .lines()
        .map(|line| {
            let line = line.expect("reading response line");
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("malformed response `{line}`: {e}"))
        })
        .collect();
    assert_eq!(responses.len(), 3, "one response per request");

    let by_id = |id: u64| {
        responses
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("no response with id {id}: {responses:?}"))
    };
    assert_eq!(by_id(1).status, Status::Correct);
    let repaired = by_id(2);
    assert_eq!(repaired.status, Status::Repaired);
    assert!(!repaired.feedback.is_empty(), "repair feedback must not be empty");
    assert!(repaired.cost.unwrap_or(0) > 0);
    let garbage = by_id(3);
    assert_eq!(garbage.status, Status::Error);
    assert!(garbage.error.as_deref().unwrap_or("").contains("syntax error"), "{garbage:?}");

    let status = child.wait().expect("waiting for clara-cli serve");
    assert!(status.success(), "serve must exit 0 on EOF, got {status:?}");
}

/// The MiniC end-to-end smoke: `clara-cli serve` brings a MiniC problem
/// online (parse → cluster), repairs a buggy C submission through the same
/// NDJSON protocol, and the feedback renders expressions in C syntax.
#[test]
fn serve_handles_minic_submissions_end_to_end() {
    let mut child = Command::new(CLI)
        .args(["serve", "fibonacci_c", "--pool-size", "8", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning clara-cli serve");

    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        let lines = [
            request_line_for(1, "fibonacci_c", Some("c"), BUGGY_FIB_C),
            request_line_for(2, "fibonacci_c", None, CORRECT_FIB_C),
            // A Python submission tagged as such against a C problem is a
            // named client error, not a syntax error.
            request_line_for(3, "fibonacci_c", Some("python"), CORRECT),
        ];
        for line in lines {
            writeln!(stdin, "{line}").expect("writing request");
        }
    }
    drop(child.stdin.take());

    let stdout = child.stdout.take().expect("piped stdout");
    let responses: Vec<Response> = BufReader::new(stdout)
        .lines()
        .map(|line| {
            let line = line.expect("reading response line");
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("malformed response `{line}`: {e}"))
        })
        .collect();
    assert_eq!(responses.len(), 3, "one response per request: {responses:?}");
    let by_id = |id: u64| responses.iter().find(|r| r.id == id).expect("response by id");

    let repaired = by_id(1);
    assert_eq!(repaired.status, Status::Repaired, "{repaired:?}");
    let text = repaired.feedback.join("\n");
    assert!(text.contains("`b <= k`"), "expected the C-syntax condition fix, got: {text}");
    assert_eq!(by_id(2).status, Status::Correct, "{:?}", by_id(2));
    let mismatch = by_id(3);
    assert_eq!(mismatch.status, Status::Error);
    assert!(mismatch.error.as_deref().unwrap_or("").contains("expects minic submissions"), "{mismatch:?}");

    let status = child.wait().expect("waiting for clara-cli serve");
    assert!(status.success(), "serve must exit 0 on EOF, got {status:?}");
}

fn run_repair(source: &str) -> i32 {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("clara-smoke-{}-{:x}.py", std::process::id(), source.len()));
    std::fs::write(&path, source).expect("writing attempt file");
    let status = Command::new(CLI)
        .args(["repair", "derivatives"])
        .arg(&path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running clara-cli repair");
    let _ = std::fs::remove_file(&path);
    status.code().expect("exit code")
}

#[test]
fn repair_exit_codes_are_meaningful() {
    // 0 — a repair was found (and also for already-correct attempts).
    assert_eq!(run_repair(INCORRECT), 0);
    assert_eq!(run_repair(CORRECT), 0);
    // 1 — analysable but no repair exists.
    assert_eq!(run_repair(NO_REPAIR), 1);
    // 2 — the attempt does not parse.
    assert_eq!(run_repair(GARBAGE), 2);
}

#[test]
fn usage_errors_exit_2() {
    let status = Command::new(CLI)
        .args(["frobnicate"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running clara-cli");
    assert_eq!(status.code(), Some(2));
    let status = Command::new(CLI)
        .args(["repair", "no-such-problem", "/dev/null"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running clara-cli");
    assert_eq!(status.code(), Some(2));
}
