//! MiniC end-to-end integration: parse → cluster → repair → C-syntax
//! feedback, plus the cross-language parity property — a semantically
//! equivalent MiniPy/MiniC pair lowers to *isomorphic* model programs (same
//! location structure, same traces on shared inputs), which is exactly what
//! lets clustering, matching and ILP repair serve both languages unchanged.

use clara::prelude::*;
use clara_corpus::minic::{all_minic_problems, fibonacci_c, minic_incorrect_attempts, special_number_c};
use clara_corpus::study::{fibonacci, special_number};

fn analyze(problem: &Problem, source: &str) -> AnalyzedProgram {
    AnalyzedProgram::from_text_in(problem.lang, source, problem.entry, &problem.inputs(), Fuel::default())
        .expect("reference solutions analyse")
}

#[test]
fn minic_buggy_submission_is_repaired_with_c_feedback() {
    let problem = fibonacci_c();
    let mut engine = Clara::new_in(Lang::MiniC, problem.entry, problem.inputs(), ClaraConfig::default());
    for seed in &problem.seeds {
        engine.add_correct_solution(seed).expect("C seeds cluster");
    }
    assert!(engine.clusters().len() >= 2, "the C seeds implement different strategies");

    let buggy = minic_incorrect_attempts("fibonacci_c")[0]; // `while (b < k)`
    let outcome = engine.repair_source(buggy).expect("buggy C attempt analyses");
    let repair = outcome.result.best.expect("the off-by-one C attempt is repairable");
    assert!(repair.total_cost > 0);
    assert!(outcome.feedback.is_repair_feedback());
    let text = outcome.feedback.lines().join("\n");
    assert!(text.contains("`b <= k`"), "feedback should show the C condition: {text}");
    assert!(
        !text.contains(" and ") && !text.contains(" or ") && !text.contains("not "),
        "C feedback must not use Python operator spellings: {text}"
    );
}

#[test]
fn every_minic_problem_repairs_every_buggy_attempt_or_degrades_gracefully() {
    for problem in all_minic_problems() {
        let mut engine = Clara::new_in(Lang::MiniC, problem.entry, problem.inputs(), ClaraConfig::default());
        for seed in &problem.seeds {
            engine.add_correct_solution(seed).expect("C seeds cluster");
        }
        let mut repaired = 0usize;
        let attempts = minic_incorrect_attempts(problem.name);
        for attempt in &attempts {
            let outcome = engine.repair_source(attempt).expect("buggy C attempts analyse");
            if outcome.result.best.is_some() {
                repaired += 1;
            }
        }
        assert!(
            repaired * 2 >= attempts.len(),
            "{}: only {repaired}/{} attempts repaired",
            problem.name,
            attempts.len()
        );
    }
}

#[test]
fn generated_minic_mutants_are_judged_sound_by_the_differential_oracle() {
    // End-to-end over the second frontend: the surface-IR mutation engine
    // synthesises wrong-answer C variants, and every repair the pipeline
    // claims on them must make the spec pass (Theorem 5.3, executable).
    let problem = special_number_c();
    let config = clara_corpus::MutationConfig { seed: 21, target_wrong_answer: 8, max_attempts: 800 };
    let (mutants, _) = clara_corpus::derive_mutants(&problem, &config);
    let wrong: Vec<_> =
        mutants.iter().filter(|m| m.bucket == clara_corpus::MutantBucket::WrongAnswer).collect();
    assert!(wrong.len() >= 8, "only {} wrong-answer C mutants", wrong.len());
    let (oracle, usable) = clara_core::DifferentialOracle::new(
        Lang::MiniC,
        problem.spec.clone(),
        problem.seeds.iter().copied(),
        ClaraConfig::default(),
    );
    assert_eq!(usable, problem.seeds.len());
    let mut repaired = 0usize;
    for mutant in &wrong {
        let verdict = oracle.check(&mutant.source);
        assert!(!verdict.is_soundness_violation(), "unsound C repair for:\n{}", mutant.source);
        if let clara_core::OracleVerdict::Repaired(check) = verdict {
            assert!(check.cost > 0, "a wrong-answer mutant cannot be repaired for free");
            repaired += 1;
        }
    }
    assert!(repaired * 2 >= wrong.len(), "only {repaired}/{} mutants repaired", wrong.len());
}

/// The parity property behind the whole refactor: the MiniPy and MiniC
/// references of a translated pair lower to isomorphic model programs.
#[test]
fn equivalent_minipy_and_minic_pairs_lower_to_isomorphic_models() {
    for (py, c) in [(fibonacci(), fibonacci_c()), (special_number(), special_number_c())] {
        let py_ref = analyze(&py, py.reference);
        let c_ref = analyze(&c, c.reference);

        // Same location structure (Definition 4.1): equal structural
        // signatures, equal location counts, and matching location kinds.
        assert!(
            py_ref.program.same_control_flow(&c_ref.program),
            "{}/{}: control flow diverged: {} vs {}",
            py.name,
            c.name,
            py_ref.signature_key(),
            c_ref.signature_key(),
        );
        for loc in py_ref.program.locs() {
            assert_eq!(
                py_ref.program.loc_info(loc).kind,
                c_ref.program.loc_info(loc).kind,
                "{}/{}: location {loc} kind diverged",
                py.name,
                c.name,
            );
        }

        // Same traces on the shared inputs: identical location sequences
        // and identical printed output (the graded observable; return
        // values differ by convention — C mains return 0).
        assert_eq!(py.inputs(), c.inputs(), "the pair shares its grading inputs");
        assert_eq!(
            py_ref.location_sequence(),
            c_ref.location_sequence(),
            "{}/{}: trace location sequences diverged",
            py.name,
            c.name,
        );
        for (a, b) in py_ref.traces.iter().zip(&c_ref.traces) {
            assert_eq!(a.output(), b.output(), "{}/{}: printed output diverged", py.name, c.name);
        }
    }
}

/// Cross-frontend hygiene: the matcher works on lowered programs and never
/// sees the surface syntax, so a MiniPy program and a MiniC program with the
/// same dynamic behaviour are dynamically equivalent in the sense of
/// Definition 4.4. (The corpus' C references `return 0` — a C convention
/// MiniPy functions lack — so this uses a `void`-style C variant whose
/// observables coincide exactly.)
#[test]
fn cross_language_models_match_dynamically() {
    const VOID_FIB_C: &str = "\
void fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b <= k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
}
";
    let py = fibonacci();
    let py_ref = analyze(&py, py.reference);
    let c_ref = AnalyzedProgram::from_text_in(Lang::MiniC, VOID_FIB_C, "fib", &py.inputs(), Fuel::default())
        .expect("void C fibonacci analyses");
    let witness = find_matching(&py_ref, &c_ref);
    assert!(witness.is_some(), "the MiniPy and MiniC fibonacci references should be dynamically equivalent");
}
