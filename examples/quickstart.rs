//! Quick start: cluster the paper's two correct `derivatives` solutions and
//! repair the two incorrect attempts of Fig. 2, printing the generated
//! feedback (compare with Fig. 2(g) and (h) of the paper).
//!
//! Run with `cargo run --release --example quickstart`.

use clara::prelude::*;

const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

const I1: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

const I2: &str = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i]=float((i)*poly[i])
    return result
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The `derivatives` assignment from the paper, with its grading inputs.
    let problem = clara::corpus::mooc::derivatives();
    let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());

    // Cluster the correct solutions (C1 and C2 are dynamically equivalent, so
    // they end up in the same cluster — §2.1).
    engine.add_correct_solution(C1)?;
    engine.add_correct_solution(C2)?;
    let stats = engine.clustering_stats();
    println!(
        "clustered {} correct solutions into {} cluster(s), mining {} equivalent expressions\n",
        stats.program_count, stats.cluster_count, stats.expression_count
    );

    for (name, attempt) in [("I1 (Fig. 2e)", I1), ("I2 (Fig. 2f)", I2)] {
        println!("=== Repairing {name} ===");
        let outcome = engine.repair_source(attempt)?;
        match &outcome.result.best {
            Some(repair) => {
                println!(
                    "repair found: cost {} ({} modified expression(s)), verified: {:?}",
                    repair.total_cost,
                    repair.modified_expression_count(),
                    repair.verified
                );
                for line in outcome.feedback.lines() {
                    println!("  - {line}");
                }
            }
            None => println!("no repair found: {:?}", outcome.result.failure),
        }
        println!();
    }
    Ok(())
}
