//! Cluster exploration: build a synthetic correct-solution pool for
//! `oddTuples`, cluster it, and print per-cluster statistics together with
//! the mined dynamically-equivalent expressions (the Fig. 2(c)/(d) view of
//! the data). This is the tool an instructor would use to understand how
//! students approached an assignment.
//!
//! Run with `cargo run --release --example cluster_explorer [problem]` where
//! `problem` is one of the nine assignment names (default: `oddTuples`).

use clara::prelude::*;
use clara_lang::expr_to_string;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "oddTuples".to_owned());
    let problem = clara::corpus::all_problems().into_iter().find(|p| p.name == wanted).unwrap_or_else(|| {
        eprintln!("unknown problem `{wanted}`, falling back to oddTuples");
        clara::corpus::mooc::odd_tuples()
    });

    let dataset = generate_dataset(
        &problem,
        DatasetConfig { correct_count: 80, incorrect_count: 0, seed: 99, ..DatasetConfig::default() },
    );

    let analyzed: Vec<AnalyzedProgram> = dataset
        .correct
        .iter()
        .filter_map(|a| {
            AnalyzedProgram::from_text(&a.source, problem.entry, &problem.inputs(), Fuel::default()).ok()
        })
        .collect();
    println!("{} of {} correct solutions are analysable", analyzed.len(), dataset.correct.len());

    let clusters = cluster_programs(analyzed);
    println!("{} clusters for `{}`:\n", clusters.len(), problem.name);

    let mut sorted: Vec<&Cluster> = clusters.iter().collect();
    sorted.sort_by_key(|c| std::cmp::Reverse(c.size()));

    for (rank, cluster) in sorted.iter().enumerate().take(8) {
        let rep = &cluster.representative.program;
        println!(
            "cluster #{rank}: {} member(s), control flow {}, {} variables, {} mined expressions",
            cluster.size(),
            clara_model::StructSig::sequence_key(&rep.signature),
            rep.vars.len(),
            cluster.expression_count()
        );
        // Show the mined equivalent expressions for the most interesting
        // location/variable pairs (those with the most variants).
        let mut keys: Vec<(clara_model::Loc, &str)> = cluster.expression_keys().collect();
        keys.sort_by_key(|(loc, var)| (std::cmp::Reverse(cluster.expressions(*loc, var).len()), loc.0));
        for (loc, var) in keys.into_iter().take(2) {
            let expressions = cluster.expressions(loc, var);
            if expressions.len() < 2 {
                continue;
            }
            println!("  dynamically equivalent ways to compute `{var}` at {loc}:");
            for expr in expressions.iter().take(6) {
                println!("    {}", expr_to_string(expr));
            }
        }
        println!();
    }
    Ok(())
}
