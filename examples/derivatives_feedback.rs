//! MOOC-style batch grading: generate a synthetic `derivatives` corpus,
//! cluster the correct pool, repair every incorrect attempt and print a
//! per-attempt report (a miniature version of the Table 1 experiment).
//!
//! Run with `cargo run --release --example derivatives_feedback`.

use clara::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = clara::corpus::mooc::derivatives();
    let dataset = generate_dataset(
        &problem,
        DatasetConfig { correct_count: 60, incorrect_count: 15, seed: 2024, ..DatasetConfig::default() },
    );
    println!(
        "synthetic corpus: {} correct solutions, {} incorrect attempts",
        dataset.correct.len(),
        dataset.incorrect.len()
    );

    let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
    let mut usable = 0;
    for attempt in &dataset.correct {
        if engine.add_correct_solution(&attempt.source).is_ok() {
            usable += 1;
        }
    }
    let stats = engine.clustering_stats();
    println!(
        "clustered {usable} usable correct solutions into {} clusters (largest has {} members)\n",
        stats.cluster_count, stats.largest_cluster
    );

    let mut repaired = 0;
    let mut total_cost = 0;
    for attempt in &dataset.incorrect {
        print!("attempt #{:<3} [{:?}, {} fault(s)] ... ", attempt.id, attempt.kind, attempt.fault_count);
        match engine.repair_source(&attempt.source) {
            Err(err) => println!("unsupported ({err})"),
            Ok(outcome) => match outcome.result.best {
                Some(repair) => {
                    repaired += 1;
                    total_cost += repair.total_cost;
                    println!(
                        "repaired with cost {:>3} in {:>6.2?} ({} suggestion(s))",
                        repair.total_cost,
                        outcome.result.elapsed,
                        outcome.feedback.lines().len()
                    );
                    for line in outcome.feedback.lines().iter().take(3) {
                        println!("        {line}");
                    }
                }
                None => println!("not repaired ({:?})", outcome.result.failure),
            },
        }
    }

    println!(
        "\nrepaired {repaired}/{} attempts; average repair cost {:.1}",
        dataset.incorrect.len(),
        total_cost as f64 / repaired.max(1) as f64
    );
    Ok(())
}
