//! Interactive-teaching simulation (the §6.3 user-study setting): a student
//! submits successive attempts at the `Fibonacci sequence` problem; after
//! every submission the engine grades it and, if it is wrong, prints
//! Clara-generated feedback. Correct submissions are added to the cluster
//! pool, exactly as in the study.
//!
//! Run with `cargo run --release --example interactive_grader`, or pass a
//! path to a MiniPy file to grade your own attempt:
//! `cargo run --release --example interactive_grader -- my_attempt.py`.

use clara::prelude::*;

/// The successive attempts of a (simulated) study participant.
const SESSION: &[(&str, &str)] = &[
    (
        "first try: forgot to advance the loop counter",
        "\
def fib(k):
    a = 1
    b = 1
    n = 1
    while b <= k:
        c = a + b
        a = b
        b = c
    print(n)
",
    ),
    (
        "second try: counts, but starts the count at 0",
        "\
def fib(k):
    a = 1
    b = 1
    n = 0
    while b <= k:
        c = a + b
        a = b
        b = c
        n = n + 1
    print(n)
",
    ),
    (
        "third try: correct",
        "\
def fib(k):
    a = 1
    b = 1
    n = 1
    while b <= k:
        c = a + b
        a = b
        b = c
        n = n + 1
    print(n)
",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = clara::corpus::study::fibonacci();
    let dataset = generate_dataset(
        &problem,
        DatasetConfig { correct_count: 40, incorrect_count: 0, seed: 7, ..DatasetConfig::default() },
    );

    let mut engine = Clara::new(problem.entry, problem.inputs(), ClaraConfig::default());
    for attempt in &dataset.correct {
        let _ = engine.add_correct_solution(&attempt.source);
    }
    println!(
        "existing pool: {} correct solutions in {} clusters\n",
        engine.correct_count(),
        engine.clusters().len()
    );

    // Optionally grade a file supplied on the command line instead of the
    // built-in session.
    if let Some(path) = std::env::args().nth(1) {
        let source = std::fs::read_to_string(&path)?;
        grade_one(&problem, &mut engine, "your attempt", &source)?;
        return Ok(());
    }

    for (label, attempt) in SESSION {
        grade_one(&problem, &mut engine, label, attempt)?;
    }
    Ok(())
}

fn grade_one(
    problem: &Problem,
    engine: &mut Clara,
    label: &str,
    source: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {label} ---");
    match problem.grade_source(source) {
        Some(true) => {
            println!("all tests pass — adding the solution to the cluster pool\n");
            let _ = engine.add_correct_solution(source);
        }
        Some(false) => {
            let start = std::time::Instant::now();
            match engine.repair_source(source) {
                Ok(outcome) => {
                    println!("tests fail — feedback generated in {:.2?}:", start.elapsed());
                    for line in outcome.feedback.lines() {
                        println!("  * {line}");
                    }
                    println!();
                }
                Err(err) => println!("tests fail and the attempt cannot be analysed: {err}\n"),
            }
        }
        None => println!("the attempt does not parse\n"),
    }
    Ok(())
}
